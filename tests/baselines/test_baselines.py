"""Baseline fuzzers: mutation operators, pool policies, feedback channels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.difuzzrtl import DifuzzRTLGenerator
from repro.baselines.mutations import MutationEngine
from repro.baselines.random_regression import RandomRegressionGenerator
from repro.baselines.thehuzz import TheHuzzGenerator
from repro.coverage.calculator import InputCoverage
from repro.isa.decoder import decode
from repro.rtl.report import CoverageReport
from repro.soc.rocket import RocketCore


class TestMutationEngine:
    def test_random_instructions_always_valid(self):
        engine = MutationEngine(seed=1)
        for _ in range(200):
            assert decode(engine.random_instruction()) is not None

    def test_random_body_length(self):
        assert len(MutationEngine(seed=2).random_body(24)) == 24

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_by_seed(self, seed):
        a = MutationEngine(seed=seed).random_body(8)
        b = MutationEngine(seed=seed).random_body(8)
        assert a == b

    def test_bit_flip_changes_exactly_one_word(self):
        engine = MutationEngine(seed=3)
        body = engine.random_body(10)
        mutated = engine.bit_flip(body)
        diffs = [i for i in range(10) if body[i] != mutated[i]]
        assert len(diffs) == 1
        assert bin(body[diffs[0]] ^ mutated[diffs[0]]).count("1") == 1

    def test_swap_preserves_multiset(self):
        engine = MutationEngine(seed=4)
        body = engine.random_body(10)
        assert sorted(engine.swap(body)) == sorted(body)

    def test_delete_shrinks(self):
        engine = MutationEngine(seed=5)
        assert len(engine.delete([1, 2, 3])) == 2

    def test_clone_grows(self):
        engine = MutationEngine(seed=6)
        assert len(engine.clone([1, 2, 3])) == 4

    def test_mutate_never_returns_empty(self):
        engine = MutationEngine(seed=7)
        body = [engine.random_instruction()]
        for _ in range(50):
            body = engine.mutate(body, n_ops=2)
            assert body


def coverage(incremental):
    return InputCoverage(standalone=5, incremental=incremental,
                         total=10, total_arms=100)


def report(hits):
    return CoverageReport(hits=frozenset(hits), total_arms=100)


class TestTheHuzz:
    def test_first_batch_is_all_seeds(self):
        generator = TheHuzzGenerator(seed=1)
        batch = generator.generate_batch(8)
        assert all(test.source == "seed" for test in batch)

    def test_mutations_after_feedback(self):
        generator = TheHuzzGenerator(seed=1, body_instructions=8)
        batch = generator.generate_batch(8)
        generator.observe(batch, [coverage(1)] * 8, [1.0] * 8,
                          [report({i}) for i in range(8)])
        second = generator.generate_batch(8)
        assert any(test.source == "mutation" for test in second)

    def test_admission_requires_novel_coverage(self):
        generator = TheHuzzGenerator(seed=1)
        batch = generator.generate_batch(4)
        same = report({1, 2})
        generator.observe(batch, [coverage(1)] * 4, [1.0] * 4, [same] * 4)
        assert len(generator.pool) == 1  # later duplicates add nothing new

    def test_pool_capped_to_recent(self):
        generator = TheHuzzGenerator(seed=1, corpus_size=4)
        for i in range(10):
            batch = generator.generate_batch(2)
            reports = [report({2 * i}), report({2 * i + 1})]
            generator.observe(batch, [coverage(1)] * 2, [1.0] * 2, reports)
        assert len(generator.pool) == 4


class TestDifuzzRTL:
    def test_for_core_extracts_control_arms(self):
        generator = DifuzzRTLGenerator.for_core(RocketCore())
        assert generator.control_arm_indices
        # Every control arm belongs to a csr/frontend condition.
        names = RocketCore().cov.names()
        for arm in generator.control_arm_indices:
            assert names[arm // 2].startswith(
                ("rocket.csr", "rocket.frontend"))

    def test_admission_ignores_datapath_novelty(self):
        generator = DifuzzRTLGenerator(
            control_arm_indices=frozenset({0, 1}), seed=2)
        batch = generator.generate_batch(2)
        # Report with novelty only outside the control subset: not admitted.
        generator.observe(batch, [coverage(1)] * 2, [1.0] * 2,
                          [report({50}), report({60})])
        assert generator.pool == []
        # Control-visible novelty is admitted.
        generator.observe(batch, [coverage(1)] * 2, [1.0] * 2,
                          [report({0}), report({50})])
        assert len(generator.pool) == 1


class TestRandomRegression:
    def test_every_batch_fresh(self):
        generator = RandomRegressionGenerator(seed=3)
        a = generator.generate_batch(4)
        b = generator.generate_batch(4)
        assert [t.words for t in a] != [t.words for t in b]

    def test_no_observe_hook_needed(self):
        generator = RandomRegressionGenerator(seed=3)
        assert not hasattr(generator, "observe")
