"""BOOM model: architectural equivalence and its fast-saturating profile."""

import pytest

from repro.baselines.mutations import MutationEngine
from repro.dataset.corpus import Corpus
from repro.fuzzing.mismatch import compare_traces
from repro.soc.boom import BoomCore, BoomParams
from repro.soc.harness import DutHarness, make_boom_harness


@pytest.fixture(scope="module")
def harness():
    return make_boom_harness()


class TestEquivalence:
    def test_no_injected_bugs_on_corpus(self, harness):
        corpus = Corpus.synthesize(20, seed=9)
        for function in corpus:
            dut, gold, _ = harness.run_differential(list(function))
            assert compare_traces(dut, gold) == [], function

    def test_no_divergence_on_random_streams(self, harness):
        engine = MutationEngine(seed=21)
        for _ in range(15):
            dut, gold, _ = harness.run_differential(engine.random_body(20))
            assert compare_traces(dut, gold) == []

    def test_run_determinism_across_reuse(self):
        """Re-running the same bodies on one core must be bit-identical —
        no caches/predictor/queue state may leak between ``run`` calls
        (the ``SetAssocCache`` LRU-stamp leak class).  Mirrors the Rocket
        coverage-reset pin in ``tests/soc/test_harness.py``."""
        engine = MutationEngine(seed=33)
        bodies = [engine.random_body(24) for _ in range(6)]
        core = BoomCore()
        fresh = [BoomCore().run(list(b)) for b in bodies]
        first = [core.run(list(b)) for b in bodies]
        second = [core.run(list(b)) for b in bodies]
        for (ft, fr), (t1, r1), (t2, r2) in zip(fresh, first, second):
            assert t1.entries == t2.entries == ft.entries
            assert t1.stop_reason == t2.stop_reason == ft.stop_reason
            assert r1.hits == r2.hits == fr.hits
            assert r1.cycles == r2.cycles == fr.cycles


class TestCoverageProfile:
    def test_arm_count(self, harness):
        # BOOM's universe is smaller than Rocket's and saturates quickly.
        assert harness.total_arms == 162

    def test_unreachable_residue_is_small(self, harness):
        """Only the debug-module conditions should be unreachable (~3%)."""
        core = harness.core
        debug_arms = {
            2 * i + arm
            for i, name in enumerate(core.cov.names())
            if name.startswith("boom.dm.")
            for arm in (0, 1)
        }
        assert len(debug_arms) == 4

    def test_single_corpus_function_covers_majority(self, harness):
        corpus = Corpus.synthesize(5, seed=11)
        _, report = harness.run_dut(list(corpus[0]))
        assert report.standalone_fraction > 0.35

    def test_ras_conditions_from_call_pair(self, harness):
        from repro.isa.encoder import encode

        body = [
            encode("jal", rd=1, imm=12),      # call forward
            encode("addi", rd=10, rs1=10, imm=1),
            encode("jal", rd=0, imm=12),      # skip the helper once returned
            encode("addi", rd=11, rs1=11, imm=1),
            encode("jalr", rd=0, rs1=1, imm=0),  # return
        ]
        _, report = harness.run_dut(body)
        names = {harness.core.cov.arm_name(a) for a in report.hits}
        assert "boom.frontend.ras_push:T" in names
        assert "boom.frontend.ras_pop:T" in names


class TestTiming:
    def test_superscalar_faster_than_rocket_on_warm_loop(self):
        from repro.isa.assembler import Assembler
        from repro.isa.spec import DRAM_BASE
        from repro.soc.harness import make_rocket_harness

        # A hot loop of independent ALU ops: once the I$ is warm, the
        # 2-wide BOOM retires roughly twice per cycle.
        body = Assembler(base=DRAM_BASE).assemble("""
            li a0, 40
        loop:
            addi a1, a1, 1
            addi a2, a2, 2
            addi a3, a3, 3
            addi a4, a4, 4
            addi a0, a0, -1
            bnez a0, loop
        """)
        boom = make_boom_harness()
        rocket = make_rocket_harness()
        _, boom_report = boom.run_dut(body)
        _, rocket_report = rocket.run_dut(body)
        assert boom_report.cycles < rocket_report.cycles
