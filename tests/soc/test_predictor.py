"""Branch predictor: BTB allocation, counter training, mispredicts."""

from repro.rtl.coverage import ConditionCoverage
from repro.soc.predictor import BranchPredictor


def make_bpu(entries=16):
    cov = ConditionCoverage()
    bpu = BranchPredictor("bpu", cov, entries=entries)
    cov.freeze()
    return bpu, cov


class TestPrediction:
    def test_cold_predicts_not_taken(self):
        bpu, _ = make_bpu()
        assert bpu.predict(0x8000_0000) is False

    def test_trains_toward_taken(self):
        bpu, _ = make_bpu()
        pc = 0x8000_0010
        bpu.update(pc, taken=True, predicted=False)   # allocate, ctr=2
        assert bpu.predict(pc) is True

    def test_counter_hysteresis(self):
        bpu, _ = make_bpu()
        pc = 0x8000_0010
        bpu.update(pc, taken=True, predicted=False)   # ctr=2
        bpu.update(pc, taken=True, predicted=True)    # ctr=3 (saturated)
        bpu.update(pc, taken=False, predicted=True)   # ctr=2: still predicts T
        assert bpu.predict(pc) is True
        bpu.update(pc, taken=False, predicted=True)   # ctr=1
        assert bpu.predict(pc) is False

    def test_aliasing_reallocates(self):
        bpu, cov = make_bpu(entries=4)
        a, b = 0x8000_0000, 0x8000_0000 + 4 * 4  # same index, different pc
        bpu.update(a, taken=True, predicted=False)
        bpu.predict(b)
        names = {cov.arm_name(x) for x in cov.run_hits}
        assert "bpu.btb_alias:T" in names
        bpu.update(b, taken=True, predicted=False)   # replaces entry
        assert bpu.predict(b) is True

    def test_mispredict_condition(self):
        bpu, cov = make_bpu()
        bpu.update(0x8000_0000, taken=True, predicted=False)
        names = {cov.arm_name(x) for x in cov.run_hits}
        assert "bpu.mispredict:T" in names

    def test_reset_clears_btb(self):
        bpu, _ = make_bpu()
        pc = 0x8000_0010
        bpu.update(pc, taken=True, predicted=False)
        bpu.reset()
        assert bpu.predict(pc) is False
