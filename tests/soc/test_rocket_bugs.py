"""Each injected RocketCore behaviour (paper §V-B) must be observable with a
targeted program on the buggy core and absent on the clean core."""

import pytest

from repro.analysis.bugs import classify_mismatch
from repro.fuzzing.mismatch import compare_traces
from repro.isa.assembler import Assembler
from repro.isa.spec import DRAM_BASE
from repro.soc.harness import DutHarness, preamble_words
from repro.soc.rocket import RocketCore, RocketParams


@pytest.fixture(scope="module")
def buggy():
    return DutHarness(RocketCore(RocketParams()))


@pytest.fixture(scope="module")
def clean():
    return DutHarness(RocketCore(RocketParams.clean()))


def assemble_body(text, body_offset=2):
    base = DRAM_BASE + 4 * (len(preamble_words()) + body_offset)
    return Assembler(base=base).assemble(text)


# The SMC patcher: executes the target once (filling its I$ line), patches
# it from 'addi t2, t2, 2' to 'addi t2, t2, 1', then executes it again.
# Without FENCE.I the buggy core serves the stale pre-patch instruction.
SMC_BODY = """
    auipc t1, 0
    addi t1, t1, 36      # &target
    lui t0, 0x138
    addi t0, t0, 0x393   # t0 = 'addi t2, t2, 1'
    addi t3, x0, 0
    j target             # first pass: caches the target's line
patch:
    sw t0, 0(t1)
    {barrier}
    j target             # second pass: stale without fence.i
target:
    addi t2, t2, 2
    bne t3, x0, done
    addi t3, x0, 1
    j patch
done:
"""


class TestBug1StaleICache:
    def test_smc_without_fencei_diverges(self, buggy):
        body = assemble_body(SMC_BODY.format(barrier="nop"))
        dut, gold, _ = buggy.run_differential(body)
        mismatches = compare_traces(dut, gold)
        assert mismatches, "expected Bug1 divergence"
        # The DUT executed the stale pre-patch instruction word.
        kinds = {m.kind for m in mismatches}
        assert "instr_word" in kinds or "rd_value" in kinds

    def test_smc_with_fencei_is_coherent(self, buggy):
        body = assemble_body(SMC_BODY.format(barrier="fence.i"))
        dut, gold, _ = buggy.run_differential(body)
        assert compare_traces(dut, gold) == []

    def test_clean_core_snoops_stores(self, clean):
        body = assemble_body(SMC_BODY.format(barrier="nop"))
        dut, gold, _ = clean.run_differential(body)
        assert compare_traces(dut, gold) == []

    def test_classified_as_cwe_1202(self, buggy):
        body = assemble_body(SMC_BODY.format(barrier="nop"))
        dut, gold, _ = buggy.run_differential(body)
        matches = {classify_mismatch(m) for m in compare_traces(dut, gold)}
        assert any(m is not None and m.cwe == "CWE-1202" for m in matches)


class TestBug2TracerMulDiv:
    BODY = """
        li a0, 6
        li a1, 7
        mul a2, a0, a1
        div a3, a2, a1
        add a4, a2, a3
    """

    def test_muldiv_writeback_missing_from_trace(self, buggy):
        dut, gold, _ = buggy.run_differential(assemble_body(self.BODY))
        mismatches = compare_traces(dut, gold)
        missing = [m for m in mismatches if m.kind == "rd_missing"]
        assert len(missing) == 2  # mul and div both suppressed

    def test_architectural_state_still_correct(self, buggy):
        """Bug2 is trace-only: the dependent add sees the right values."""
        dut, gold, _ = buggy.run_differential(assemble_body(self.BODY))
        adds = [e for e in dut if e.rd == 14]
        assert adds and adds[0].rd_value == 48  # 42 + 6

    def test_clean_core_traces_muldiv(self, clean):
        dut, gold, _ = clean.run_differential(assemble_body(self.BODY))
        assert compare_traces(dut, gold) == []

    def test_classified_as_cwe_440(self, buggy):
        dut, gold, _ = buggy.run_differential(assemble_body(self.BODY))
        matches = [classify_mismatch(m) for m in compare_traces(dut, gold)]
        assert any(m is not None and m.cwe == "CWE-440" for m in matches)


class TestFinding1TrapPriority:
    # Misaligned AND unmapped: golden reports misaligned, Rocket reports
    # access fault.  t1 = 1<<31 from the preamble; doubled it is unmapped.
    BODY = """
        slli t1, t1, 1
        addi t1, t1, 1
        ld a0, 0(t1)
    """

    def test_cause_mismatch(self, buggy):
        dut, gold, _ = buggy.run_differential(assemble_body(self.BODY))
        causes = [m for m in compare_traces(dut, gold) if m.kind == "trap_cause"]
        assert causes, "expected a trap-cause mismatch"
        match = classify_mismatch(causes[0])
        assert match is not None and match.bug_id == "FINDING1"

    def test_clean_core_follows_spec(self, clean):
        dut, gold, _ = clean.run_differential(assemble_body(self.BODY))
        assert compare_traces(dut, gold) == []

    def test_misaligned_alone_agrees(self, buggy):
        """Only the *simultaneous* case diverges; plain misaligned (mapped)
        addresses trap identically on both."""
        body = assemble_body("ld a0, 1(s0)")
        dut, gold, _ = buggy.run_differential(body)
        assert compare_traces(dut, gold) == []


class TestFinding2AmoX0Trace:
    BODY = "amoor.d x0, a1, (s0)"

    def test_trace_shows_data_arriving_at_x0(self, buggy):
        dut, gold, _ = buggy.run_differential(assemble_body(self.BODY))
        mismatches = compare_traces(dut, gold)
        spurious = [m for m in mismatches if m.kind == "rd_spurious_x0"]
        assert spurious
        match = classify_mismatch(spurious[0])
        assert match is not None and match.bug_id == "FINDING2"

    def test_clean_core_suppresses(self, clean):
        dut, gold, _ = clean.run_differential(assemble_body(self.BODY))
        assert compare_traces(dut, gold) == []


class TestFinding3X0JalrTrace:
    # A load immediately followed by jalr x0 triggers the quirk.  Use ra,
    # which the harness points at the terminator.
    BODY = """
        ld a0, 0(s0)
        jalr x0, 0(ra)
    """

    def test_spurious_x0_write_record(self, buggy):
        dut, gold, _ = buggy.run_differential(assemble_body(self.BODY))
        spurious = [m for m in compare_traces(dut, gold)
                    if m.kind == "rd_spurious_x0"]
        assert spurious
        match = classify_mismatch(spurious[0])
        assert match is not None and match.bug_id == "FINDING3"

    def test_requires_preceding_load(self, buggy):
        body = assemble_body("addi a0, a0, 1\njalr x0, 0(ra)")
        dut, gold, _ = buggy.run_differential(body)
        assert compare_traces(dut, gold) == []

    def test_clean_core_suppresses(self, clean):
        dut, gold, _ = clean.run_differential(assemble_body(self.BODY))
        assert compare_traces(dut, gold) == []
