"""Targeted stimulus -> condition mapping for the Rocket model's deep
coverage points: each entangled idiom must light up exactly the conditions
it was designed around (DESIGN.md §5)."""

import pytest

from repro.isa.assembler import Assembler
from repro.isa.spec import DRAM_BASE
from repro.soc.harness import make_rocket_harness, preamble_words


@pytest.fixture()
def harness():
    return make_rocket_harness()


def arm_names(harness, body_text):
    base = DRAM_BASE + 4 * (len(preamble_words()) + 2)
    body = Assembler(base=base).assemble(body_text)
    _, report = harness.run_dut(body)
    cov = harness.core.cov
    return {cov.arm_name(a) for a in report.hits}


class TestSequenceConditions:
    def test_loop_trains_predictor_and_loop_conditions(self, harness):
        names = arm_names(harness, """
            li a0, 4
        loop:
            addi a0, a0, -1
            bnez a0, loop
        """)
        assert "rocket.frontend.loop_iteration:T" in names
        assert "rocket.frontend.tight_loop:T" in names
        assert "rocket.frontend.branch_both_ways:T" in names  # exit edge
        assert "rocket.frontend.bpu.ctr_saturated_taken:T" in names

    def test_dependency_chain(self, harness):
        names = arm_names(harness, """
            addi a0, a0, 1
            addi a0, a0, 1
            addi a0, a0, 1
            addi a0, a0, 1
            addi a0, a0, 1
            addi a0, a0, 1
        """)
        assert "rocket.hazard.chain3:T" in names
        assert "rocket.hazard.chain5:T" in names

    def test_spill_reload(self, harness):
        names = arm_names(harness, """
            sd a0, 16(sp)
            addi a1, a1, 1
            ld a2, 16(sp)
        """)
        assert "rocket.mem.spill_reload:T" in names

    def test_lr_sc_success(self, harness):
        names = arm_names(harness, """
            lr.d a0, (s0)
            addi a0, a0, 1
            sc.d a1, a0, (s0)
        """)
        assert "rocket.mem.sc_success:T" in names
        assert "rocket.mem.reservation_set:T" in names

    def test_sc_broken_by_store(self, harness):
        names = arm_names(harness, """
            lr.d a0, (s0)
            sd a1, 0(s0)
            sc.d a2, a0, (s0)
        """)
        assert "rocket.mem.sc_after_store_fail:T" in names
        assert "rocket.mem.sc_success:F" in names

    def test_call_return_pair(self, harness):
        names = arm_names(harness, """
            jal ra, helper
            j after
        helper:
            addi a0, a0, 1
            jalr x0, 0(ra)
        after:
            nop
        """)
        assert "rocket.frontend.call_return_pair:T" in names
        assert "rocket.frontend.jalr_to_link:T" in names
        assert "rocket.execute.link_reg_used:T" in names

    def test_cmp_then_branch(self, harness):
        names = arm_names(harness, """
            slt t0, a0, a1
            bne t0, x0, 8
            nop
        """)
        assert "rocket.execute.branch_after_cmp:T" in names

    def test_muldiv_chain(self, harness):
        names = arm_names(harness, """
            mul a2, a0, a1
            div a3, a2, a1
        """)
        assert "rocket.execute.muldiv_chain:T" in names
        assert "rocket.execute.div_after_mul:T" in names

    def test_csr_roundtrip(self, harness):
        names = arm_names(harness, """
            csrw mscratch, a0
            csrr a1, mscratch
        """)
        assert "rocket.csr.write_read_roundtrip:T" in names

    def test_streaming_locality(self, harness):
        names = arm_names(harness, """
            sd a0, 0(s0)
            sd a0, 8(s0)
            sd a0, 32(s0)
            ld a1, 0(s0)
            ld a2, 8(s0)
            ld a3, 0(s0)
            ld a4, 32(s0)
            ld a5, 16(s0)
        """)
        assert "rocket.mem.same_line_reuse:T" in names
        assert "rocket.mem.cross_line_pair:T" in names
        assert "rocket.mem.line_reuse3:T" in names
        assert "rocket.mem.hit_streak4:T" in names

    def test_redirty_and_coalesce(self, harness):
        names = arm_names(harness, """
            sd a0, 0(s0)
            sd a1, 0(s0)
            sd a2, 8(s0)
        """)
        assert "rocket.mem.redirty:T" in names
        assert "rocket.mem.coalesce:T" in names


class TestTrapConditions:
    def test_each_cause_has_comparator(self, harness):
        names = arm_names(harness, "ecall")
        assert "rocket.csr.cause_is_11:T" in names
        assert "rocket.csr.cause_is_8:F" in names

    def test_illegal_instruction_cause(self, harness):
        names = arm_names(harness, ".word 0x0")
        assert "rocket.csr.cause_is_2:T" in names
        assert "rocket.decode.illegal:T" in names

    def test_user_mode_entry(self, harness):
        names = arm_names(harness, """
            auipc t0, 0
            addi t0, t0, 28
            csrw mepc, t0
            lui t1, 2
            addi t1, t1, -0x800
            csrrc x0, mstatus, t1
            mret
            ecall
        """)
        assert "rocket.csr.enter_user:T" in names
        assert "rocket.csr.in_user_mode:T" in names
        assert "rocket.csr.cause_is_8:T" in names  # ecall from U

    def test_unreachable_debug_arms_stay_cold(self, harness):
        names = arm_names(harness, "nop")
        assert not any(name.startswith("rocket.dm.") for name in names)

    def test_irq_false_arms_polled(self, harness):
        names = arm_names(harness, "nop")
        assert "rocket.clint.mtip_pending:F" in names
        assert "rocket.clint.mtip_pending:T" not in names
