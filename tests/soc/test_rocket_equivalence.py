"""A *clean* RocketCore must be architecturally equivalent to the golden
model: identical commit traces for arbitrary programs.  This is the
foundation the Mismatch Detector stands on — with bugs disabled there must
be zero mismatches, so every mismatch observed on the buggy core is injected
behaviour, not modelling noise.
"""

import pytest

from repro.dataset.corpus import Corpus
from repro.fuzzing.mismatch import compare_traces
from repro.soc.harness import DutHarness
from repro.soc.rocket import RocketCore, RocketParams
from repro.baselines.mutations import MutationEngine


@pytest.fixture(scope="module")
def clean_harness():
    return DutHarness(RocketCore(RocketParams.clean()))


@pytest.fixture(scope="module")
def corpus():
    return Corpus.synthesize(40, seed=77)


class TestCleanCoreEquivalence:
    def test_corpus_functions_produce_identical_traces(self, clean_harness, corpus):
        for function in corpus:
            dut, gold, _ = clean_harness.run_differential(list(function))
            mismatches = compare_traces(dut, gold)
            assert mismatches == [], (
                f"clean core diverged: {mismatches[0]}\n"
                f"DUT:\n{dut.render(limit=40)}\nGOLD:\n{gold.render(limit=40)}"
            )

    def test_random_instruction_streams_match(self, clean_harness):
        engine = MutationEngine(seed=123)
        for _ in range(25):
            body = engine.random_body(24)
            dut, gold, _ = clean_harness.run_differential(body)
            assert compare_traces(dut, gold) == []

    def test_stop_reasons_agree(self, clean_harness):
        engine = MutationEngine(seed=5)
        for _ in range(10):
            body = engine.random_body(16)
            dut, gold, _ = clean_harness.run_differential(body)
            assert dut.stop_reason == gold.stop_reason

    def test_smc_with_fencei_matches(self, clean_harness):
        """Self-modifying code WITH fence.i is coherent even on the buggy
        core — but here we check the clean core agrees too."""
        from repro.isa.assembler import Assembler
        from repro.isa.spec import DRAM_BASE
        from repro.soc.harness import preamble_words

        base = DRAM_BASE + 4 * (len(preamble_words()) + 2)
        body = Assembler(base=base).assemble("""
            auipc t1, 0
            addi t1, t1, 24
            lui t0, 0x138
            addi t0, t0, 0x393   # 'addi t2, t2, 1'
            sw t0, 0(t1)
            fence.i
            addi t2, t2, 2       # patched to +1 before execution
        """)
        dut, gold, _ = clean_harness.run_differential(body)
        assert compare_traces(dut, gold) == []
