"""DUT harness: program image construction and differential running."""

import pytest

from repro.golden.simulator import GoldenSimulator
from repro.isa.decoder import decode
from repro.isa.encoder import encode
from repro.isa.spec import DATA_BASE, DRAM_BASE
from repro.soc.harness import (
    TERMINATOR,
    build_program,
    make_boom_harness,
    make_rocket_harness,
    preamble_words,
)


class TestBuildProgram:
    def test_layout(self):
        body = [encode("addi", rd=10, rs1=0, imm=1)]
        program = build_program(body)
        n_pre = len(preamble_words())
        assert program[:n_pre] == preamble_words()
        assert program[-1] == TERMINATOR
        assert body[0] in program

    def test_ra_points_at_terminator(self):
        """Running just 'ret' must land on the wfi and stop cleanly."""
        trace = GoldenSimulator().run(
            build_program([encode("jalr", rd=0, rs1=1, imm=0)])
        )
        assert trace.stop_reason == "wfi"

    def test_ra_correct_for_long_bodies(self):
        body = [encode("addi", rd=0, rs1=0, imm=0)] * 700
        trace = GoldenSimulator().run(build_program(body + [
            encode("jalr", rd=0, rs1=1, imm=0)
        ]))
        assert trace.stop_reason == "wfi"

    def test_empty_body(self):
        trace = GoldenSimulator().run(build_program([]))
        assert trace.stop_reason == "wfi"


class TestBuildProgramMemoization:
    """The cached preamble/ra-setup must emit byte-identical images."""

    @staticmethod
    def _reference_image(body):
        """Original (uncached) construction: re-encode everything per call."""
        fixed = preamble_words()
        n_addi = 1
        while 4 * (1 + n_addi + len(body)) - 2044 * (n_addi - 1) > 2047:
            n_addi += 1
        total = 4 * (1 + n_addi + len(body))
        ra_setup = [encode("auipc", rd=1, imm=0)]
        ra_setup += [encode("addi", rd=1, rs1=1, imm=2044)] * (n_addi - 1)
        ra_setup.append(
            encode("addi", rd=1, rs1=1, imm=total - 2044 * (n_addi - 1))
        )
        return fixed + ra_setup + list(body) + [TERMINATOR]

    def test_image_unchanged_across_lengths(self):
        nop = encode("addi", rd=0, rs1=0, imm=0)
        # 509/510/511 straddle the n_addi=1 -> 2 chain-length boundary.
        for length in (0, 1, 24, 509, 510, 511, 700, 1200):
            body = [nop] * length
            assert build_program(body) == self._reference_image(body), length

    def test_fresh_lists_returned(self):
        """Callers may mutate the returned image without corrupting caches."""
        first = build_program([])
        first[0] = 0
        assert build_program([])[0] != 0
        preamble = preamble_words()
        preamble[0] = 0
        assert preamble_words()[0] != 0


class TestPreambleEffects:
    def test_pointer_registers_initialised(self):
        trace = GoldenSimulator().run(build_program([]))
        writes = {e.rd: e.rd_value for e in trace if e.rd is not None}
        assert writes[2] == DATA_BASE + 0x400     # sp
        assert writes[8] == DATA_BASE + 0x100     # s0
        assert writes[3] == DATA_BASE             # gp
        assert writes[4] == DATA_BASE + 0x200     # tp

    def test_pointers_are_8_aligned_and_mapped(self):
        from repro.golden.memory import SparseMemory

        trace = GoldenSimulator().run(build_program([]))
        writes = {e.rd: e.rd_value for e in trace if e.rd is not None}
        memory = SparseMemory()
        for reg in (2, 3, 4, 8, 9):
            assert writes[reg] % 8 == 0, f"x{reg} misaligned"
            assert memory.is_mapped(writes[reg], 8), f"x{reg} unmapped"


class TestDifferentialRun:
    def test_returns_trace_trace_report(self):
        harness = make_rocket_harness()
        dut, gold, report = harness.run_differential(
            [encode("addi", rd=10, rs1=0, imm=5)]
        )
        assert dut.stop_reason == gold.stop_reason == "wfi"
        assert report.total_arms == harness.total_arms
        assert report.standalone_count > 0
        assert report.cycles > 0

    def test_coverage_resets_between_tests(self):
        harness = make_rocket_harness()
        _, first = harness.run_dut([encode("mul", rd=5, rs1=10, rs2=11)])
        _, second = harness.run_dut([encode("addi", rd=5, rs1=0, imm=1)])
        muldiv_arm = None
        for i, name in enumerate(harness.core.cov.names()):
            if name == "rocket.decode.is_muldiv":
                muldiv_arm = 2 * i + 1  # true arm
        assert muldiv_arm in first.hits
        assert muldiv_arm not in second.hits


class TestBatchedLanes:
    BODIES = [[encode("addi", rd=10, rs1=0, imm=i)] for i in range(8)]

    def test_dut_lanes_batch_matches_scalar(self):
        scalar = make_rocket_harness().run_differential_batch(self.BODIES)
        lanes = make_rocket_harness(
            golden_lanes=4, dut_lanes=4).run_differential_batch(self.BODIES)
        for (dt0, gt0, r0), (dt1, gt1, r1) in zip(scalar, lanes):
            assert dt1.entries == dt0.entries
            assert gt1.entries == gt0.entries
            assert r1.hits == r0.hits and r1.cycles == r0.cycles

    def test_run_dut_batch_matches_run_dut(self):
        harness = make_rocket_harness(dut_lanes=4)
        batch = harness.run_dut_batch(self.BODIES)
        for body, (trace, report) in zip(self.BODIES, batch):
            ref_trace, ref_report = make_rocket_harness().run_dut(body)
            assert trace.entries == ref_trace.entries
            assert report.hits == ref_report.hits

    def test_boom_dut_lanes_batch_matches_scalar(self):
        scalar = make_boom_harness().run_differential_batch(self.BODIES)
        lanes = make_boom_harness(
            golden_lanes=4, dut_lanes=4).run_differential_batch(self.BODIES)
        for (dt0, gt0, r0), (dt1, gt1, r1) in zip(scalar, lanes):
            assert dt1.entries == dt0.entries
            assert gt1.entries == gt0.entries
            assert r1.hits == r0.hits and r1.cycles == r0.cycles

    def test_kind_without_batch_engine_rejects_dut_lanes(self, monkeypatch):
        """A registered kind that declares no batch engine must keep the
        loud error — at factory-build time and at harness-build time."""
        from repro.soc import harness as harness_mod
        from repro.soc.rocket import RocketParams

        class ScalarOnlyCore:
            params = RocketParams()

        monkeypatch.setitem(
            harness_mod.ENGINE_REGISTRY, "scalar-only",
            lambda: harness_mod.EngineSpec(ScalarOnlyCore, RocketParams, None))
        # Scalar use of the kind is fine...
        harness_mod.harness_factory("scalar-only")
        # ...but any dut_lanes request fails loudly on both paths.
        with pytest.raises(ValueError, match="batch engine"):
            harness_mod.harness_factory("scalar-only", dut_lanes=4)
        with pytest.raises(ValueError, match="batch engine"):
            harness_mod.DutHarness(ScalarOnlyCore(), dut_lanes=4)

    def test_unknown_kind_rejected(self):
        from repro.soc.harness import harness_factory

        with pytest.raises(ValueError, match="unknown harness kind"):
            harness_factory("cva6")
