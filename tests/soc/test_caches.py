"""Set-associative cache model: hits, eviction, staleness (Bug1 substrate)."""

from repro.golden.memory import SparseMemory
from repro.isa.spec import DRAM_BASE
from repro.rtl.coverage import ConditionCoverage
from repro.soc.caches import SetAssocCache


def make_cache(**kwargs):
    cov = ConditionCoverage()
    cache = SetAssocCache("c", cov, **kwargs)
    cov.freeze()
    return cache, cov


def backing(fill=0):
    mem = SparseMemory()
    if fill:
        for i in range(0, 4096, 8):
            mem.write_bytes(DRAM_BASE + i, (fill + i).to_bytes(8, "little"))
    return mem


class TestLookupRefill:
    def test_miss_then_hit(self):
        cache, _ = make_cache()
        mem = backing()
        assert cache.lookup(DRAM_BASE) is None
        cache.refill(DRAM_BASE, mem.read_bytes)
        assert cache.lookup(DRAM_BASE) is not None

    def test_same_line_different_offset_hits(self):
        cache, _ = make_cache(line_bytes=32)
        cache.refill(DRAM_BASE, backing().read_bytes)
        assert cache.lookup(DRAM_BASE + 28) is not None

    def test_adjacent_line_misses(self):
        cache, _ = make_cache(line_bytes=32)
        cache.refill(DRAM_BASE, backing().read_bytes)
        assert cache.lookup(DRAM_BASE + 32) is None

    def test_refill_copies_backing_data(self):
        cache, _ = make_cache()
        mem = backing()
        mem.write_bytes(DRAM_BASE + 8, (0xABCD).to_bytes(8, "little"))
        cache.refill(DRAM_BASE, mem.read_bytes)
        assert cache.read_cached(DRAM_BASE + 8, 8) == (0xABCD).to_bytes(8, "little")

    def test_two_ways_no_conflict(self):
        cache, _ = make_cache(ways=2, sets=8, line_bytes=32)
        mem = backing()
        set_span = 8 * 32
        cache.refill(DRAM_BASE, mem.read_bytes)
        cache.refill(DRAM_BASE + set_span, mem.read_bytes)  # same set, way 1
        assert cache.lookup(DRAM_BASE) is not None
        assert cache.lookup(DRAM_BASE + set_span) is not None

    def test_third_line_evicts_lru(self):
        cache, _ = make_cache(ways=2, sets=8, line_bytes=32)
        mem = backing()
        set_span = 8 * 32
        cache.refill(DRAM_BASE, mem.read_bytes)
        cache.refill(DRAM_BASE + set_span, mem.read_bytes)
        cache.lookup(DRAM_BASE)  # touch way 0 so way 1 becomes LRU
        cache.refill(DRAM_BASE + 2 * set_span, mem.read_bytes)
        assert cache.lookup(DRAM_BASE) is not None          # kept (MRU)
        assert cache.lookup(DRAM_BASE + set_span) is None   # evicted
        assert cache.last_evicted == (DRAM_BASE + set_span) // 32


class TestStalenessAndCoherence:
    """The substrate of Bug1 (CWE-1202): cached lines do not observe stores
    to the backing memory unless explicitly updated or invalidated."""

    def test_cached_line_goes_stale(self):
        cache, _ = make_cache()
        mem = backing()
        cache.refill(DRAM_BASE, mem.read_bytes)
        mem.write_bytes(DRAM_BASE, (0x1111).to_bytes(8, "little"))
        stale = cache.read_cached(DRAM_BASE, 8)
        assert stale == (0).to_bytes(8, "little")  # old contents

    def test_update_stored_line_keeps_coherence(self):
        cache, _ = make_cache()
        mem = backing()
        cache.refill(DRAM_BASE, mem.read_bytes)
        cache.update_stored_line(DRAM_BASE, (0x2222).to_bytes(8, "little"))
        assert cache.read_cached(DRAM_BASE, 8) == (0x2222).to_bytes(8, "little")

    def test_update_marks_dirty(self):
        cache, _ = make_cache()
        cache.refill(DRAM_BASE, backing().read_bytes)
        assert not cache.is_dirty(DRAM_BASE)
        cache.update_stored_line(DRAM_BASE, b"\xff")
        assert cache.is_dirty(DRAM_BASE)

    def test_invalidate_all_flushes(self):
        cache, _ = make_cache()
        cache.refill(DRAM_BASE, backing().read_bytes)
        cache.invalidate_all()
        assert cache.lookup(DRAM_BASE) is None

    def test_reset_clears_state(self):
        cache, _ = make_cache()
        cache.refill(DRAM_BASE, backing().read_bytes)
        cache.reset()
        assert not cache.contains(DRAM_BASE)
        assert cache.last_evicted is None


class TestCoverageConditions:
    def test_hit_condition_both_arms(self):
        cache, cov = make_cache()
        mem = backing()
        cache.lookup(DRAM_BASE)                     # miss -> hit:F
        cache.refill(DRAM_BASE, mem.read_bytes)
        cache.lookup(DRAM_BASE)                     # hit:T
        names = {cov.arm_name(a) for a in cov.run_hits}
        assert "c.hit:F" in names
        assert "c.hit:T" in names

    def test_evict_dirty_condition(self):
        cache, cov = make_cache(ways=1, sets=1, line_bytes=32)
        mem = backing()
        cache.refill(DRAM_BASE, mem.read_bytes)
        cache.update_stored_line(DRAM_BASE, b"\x01")
        cache.refill(DRAM_BASE + 32, mem.read_bytes)  # evicts the dirty line
        names = {cov.arm_name(a) for a in cov.run_hits}
        assert "c.evict_dirty:T" in names
