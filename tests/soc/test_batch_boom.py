"""Parity suite for the batched BOOM engine (``repro.soc.batch_boom``).

The scalar :class:`BoomCore` is the pinned reference: every test asserts
the batched engine's ``CommitTrace``\\ s **and** ``CoverageReport``\\ s are
bit-identical to it, lane for lane — through occupancy-drain churn, BTB
divergence, trap chains, peel-rejoin boundaries, every lane width, and the
graceful scalar fallbacks (numpy missing, tiny batches, exotic cache
geometry).  Structure mirrors ``tests/soc/test_batch.py``; the targeted
bodies swap in superscalar-specific stress (RAS over/underflow, queue
pressure, wakeup bypass, drain-parity cutoffs).
"""

from __future__ import annotations

import pytest

from repro.baselines.random_regression import RandomRegressionGenerator
from repro.baselines.thehuzz import TheHuzzGenerator
from repro.coverage.calculator import CoverageCalculator
from repro.coverage.reference import SetCoverageCalculator, SetCoverageReport
from repro.isa import spec
from repro.isa.encoder import encode
from repro.soc import batch as batch_mod
from repro.soc.batch import LANE_MIN
from repro.soc.batch_boom import BoomBatchSimulator
from repro.soc.boom.core import BoomCore
from repro.soc.boom.params import BoomParams


def assert_parity(bodies, params=None, base=spec.DRAM_BASE, lanes=32):
    """Batched traces and reports must equal scalar ones exactly, in order."""
    p = params or BoomParams()
    scalar = BoomCore(p)
    expected = [scalar.run(list(b), base) for b in bodies]
    got = BoomBatchSimulator(p, lanes=lanes).run_batch(bodies, base)
    assert len(got) == len(expected)
    for i, ((rt, rr), (ot, orep)) in enumerate(zip(expected, got)):
        assert ot.stop_reason == rt.stop_reason, f"lane {i}"
        assert len(ot.entries) == len(rt.entries), f"lane {i}"
        for j, (re_, oe) in enumerate(zip(rt.entries, ot.entries)):
            assert oe == re_, f"lane {i} entry {j}:\n  ref {re_}\n  got {oe}"
        assert orep.hits == rr.hits, f"lane {i} coverage"
        assert orep.cycles == rr.cycles, f"lane {i} cycles"
        assert orep.total_arms == rr.total_arms, f"lane {i}"
    return expected, got


# -- randomized property sweeps ----------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("body_len", [4, 24, 64])
def test_random_bodies_parity(seed, body_len):
    """Random regression bodies: branches, mem ops, traps, runaway loops."""
    gen = RandomRegressionGenerator(body_instructions=body_len, seed=seed)
    bodies = [t.words for t in gen.generate_batch(16)]
    assert_parity(bodies)


@pytest.mark.parametrize("seed", [0, 3])
def test_thehuzz_bodies_parity(seed):
    """Mutation-shaped bodies exercise a different opcode mix."""
    gen = TheHuzzGenerator(body_instructions=24, seed=seed)
    bodies = [t.words for t in gen.generate_batch(12)]
    assert_parity(bodies)


@pytest.mark.parametrize("seed", [0, 1])
def test_coverage_matches_reference_set_engine(seed):
    """Per-lane hit sets agree with the retained set engine, and both
    calculators see identical coverage from the batched report stream."""
    gen = RandomRegressionGenerator(body_instructions=24, seed=seed)
    bodies = [t.words for t in gen.generate_batch(16)]
    expected, got = assert_parity(bodies)
    total_arms = expected[0][1].total_arms
    bit_calc = CoverageCalculator(total_arms)
    set_calc = SetCoverageCalculator(total_arms)
    bit_calc.begin_batch()
    set_calc.begin_batch()
    for (_, ref_report), (_, out_report) in zip(expected, got):
        set_report = SetCoverageReport(
            hits=frozenset(int(a) for a in ref_report.hits),
            total_arms=total_arms, cycles=ref_report.cycles)
        assert out_report.hits == set_report.hits
        bit_cov = bit_calc.observe(out_report)
        set_cov = set_calc.observe(set_report)
        assert bit_cov.incremental == set_cov.incremental
        assert bit_cov.standalone == set_cov.standalone
        assert bit_cov.total == set_cov.total
    assert bit_calc.cumulative.count == set_calc.cumulative.count
    assert bit_calc.total_percent == pytest.approx(set_calc.total_percent)


@pytest.mark.parametrize("max_steps", [20, 23, 25, 4096])
def test_max_steps_cutoffs_parity(max_steps):
    """Cutoffs landing mid-trap-handler must truncate identically (BOOM
    runs the handler as ordinary vector rounds, so the budget lands on the
    exact same handler instruction)."""
    gen = RandomRegressionGenerator(body_instructions=16, seed=4)
    bodies = [t.words for t in gen.generate_batch(12)]
    assert_parity(bodies, BoomParams(max_steps=max_steps))


@pytest.mark.parametrize("max_traps", [1, 3, 64])
def test_max_traps_cutoffs_parity(max_traps):
    gen = RandomRegressionGenerator(body_instructions=16, seed=5)
    bodies = [t.words for t in gen.generate_batch(12)]
    assert_parity(bodies, BoomParams(max_traps=max_traps))


def test_lane_widths_agree():
    """The same batch must produce the same results at any lane width."""
    gen = RandomRegressionGenerator(body_instructions=24, seed=6)
    bodies = [t.words for t in gen.generate_batch(17)]  # odd: ragged groups
    for lanes in (4, 8, 16, 64, 128):
        assert_parity(bodies, lanes=lanes)


def test_base_override_parity():
    gen = RandomRegressionGenerator(body_instructions=8, seed=7)
    bodies = [t.words for t in gen.generate_batch(8)]
    assert_parity(bodies, base=spec.DRAM_BASE + 0x1000)


@pytest.mark.parametrize("params", [
    BoomParams(rob_entries=4, issue_queue_entries=2),
    BoomParams(ldq_entries=1, stq_entries=1, ras_entries=1),
    BoomParams(phys_regs=34, mispredict_penalty=3),
], ids=["tiny-rob", "tiny-queues", "tight-freelist"])
def test_param_variants_parity(params):
    """Shrunken structures make the full/stall arms fire constantly —
    maximum pressure on the occupancy kernels."""
    gen = RandomRegressionGenerator(body_instructions=24, seed=10)
    bodies = [t.words for t in gen.generate_batch(12)]
    assert_parity(bodies, params)


# -- targeted hard cases ------------------------------------------------------


def _dram(rd=1):
    return encode("lui", rd=rd, imm=0x80000)  # x[rd] = DRAM_BASE


def _targeted_bodies() -> list[list[int]]:
    lw = lambda rd, imm: encode("lw", rd=rd, rs1=1, imm=imm)
    sw = lambda rs2, imm: encode("sw", rd=0, rs1=1, rs2=rs2, imm=imm)
    return [
        # Cache churn under 2-way geometry: eviction, LRU refresh, dirty
        # writeback (same shapes as the Rocket suite).
        [_dram(), lw(2, 0), lw(3, 256), lw(4, 512), lw(5, 0)],
        [_dram(), sw(1, 0), sw(1, 256), lw(2, 512), lw(3, 768), lw(4, 0)],
        [_dram(), lw(2, 0), lw(3, 256), lw(4, 0), lw(5, 512), lw(6, 256)],
        # LSQ pressure: back-to-back stores then loads (stq/ldq fill,
        # store-to-load forwarding window).
        [_dram(), sw(1, 0), sw(1, 8), sw(1, 16), sw(1, 24),
         lw(2, 0), lw(3, 8), lw(4, 16), lw(5, 24)],
        # RAS: call/return nest deeper than the 2-entry stack (overflow),
        # then return past empty (underflow).
        [encode("jal", rd=1, imm=4),               # call
         encode("jal", rd=1, imm=4),               # call (depth 2)
         encode("jal", rd=1, imm=4),               # call (overflow)
         encode("jalr", rd=0, rs1=1, imm=0),       # ret
         encode("jalr", rd=0, rs1=1, imm=0)],      # ret
        [encode("addi", rd=1, rs1=0, imm=0),       # x1 = 0: wild return
         encode("jalr", rd=0, rs1=1, imm=0)],      # ret on empty RAS
        # Wakeup bypass: tight dependency chains through x0 and non-x0.
        [encode("addi", rd=1, rs1=0, imm=3),
         encode("addi", rd=2, rs1=1, imm=1),       # rs1 bypass
         encode("add", rd=3, rs1=2, rs2=2),        # both operands bypass
         encode("addi", rd=0, rs1=3, imm=1),       # rd = x0
         encode("addi", rd=4, rs1=0, imm=0)],
        # Branch/BTB: a taken loop trains the counter to saturation, then
        # a never-taken branch aliases the same BTB set.
        [encode("addi", rd=1, rs1=0, imm=4),
         encode("addi", rd=1, rs1=1, imm=-1),
         encode("bne", rs1=1, rs2=0, imm=-4),      # backward taken loop
         encode("beq", rs1=1, rs2=2, imm=8),       # not taken
         encode("addi", rd=3, rs1=0, imm=9)],
        [],                                              # empty body
        [encode("wfi")],                                 # immediate halt
        [encode("jal", rd=0, imm=0)],                    # tight loop: max_steps
        [encode("jalr", rd=0, rs1=0, imm=0x700)],        # wild jump: trap chain
        [0xFFFFFFFF, encode("addi", rd=1, rs1=0, imm=7)],  # illegal word
        [0, 0, 0],                                       # zero words
        [encode("addi", rd=1, rs1=0, imm=3),             # misaligned load
         encode("lw", rd=2, rs1=1, imm=0)],
        [encode("addi", rd=1, rs1=0, imm=2),             # misaligned jump tgt
         encode("jalr", rd=0, rs1=1, imm=0)],
        [_dram(),                                        # mapped atomic: peel
         encode("amoadd.w", rd=2, rs1=1, rs2=3)],
        [_dram(),                                        # lr/sc pair: peel
         encode("lr.w", rd=2, rs1=1),
         encode("sc.w", rd=3, rs1=1, rs2=2)],
        [_dram(),                                        # peel, rejoin, then
         encode("amoadd.w", rd=2, rs1=1, rs2=3),         # vector rounds, then
         encode("addi", rd=4, rs1=2, imm=1),             # a second peel
         encode("lr.w", rd=5, rs1=1),
         encode("addi", rd=6, rs1=5, imm=1)],
        [encode("ecall"), encode("addi", rd=1, rs1=0, imm=2)],
        [encode("ebreak"), encode("addi", rd=1, rs1=0, imm=2)],
        [encode("csrrs", rd=1, csr=spec.CSR_MCYCLE, rs1=0),   # counter CSRs
         0xFFFFFFFF,                                          # ... over a trap
         encode("csrrs", rd=2, csr=spec.CSR_MCYCLE, rs1=0),
         encode("csrrw", rd=0, csr=spec.CSR_MCYCLE, rs1=2),
         encode("csrrs", rd=3, csr=spec.CSR_MINSTRET, rs1=0)],
        [encode("csrrw", rd=0, csr=spec.CSR_MEPC, rs1=5),     # mret round-trip
         encode("mret"),
         encode("addi", rd=6, rs1=0, imm=1)],
        [encode("csrrw", rd=0, csr=spec.CSR_MTVEC, rs1=5),    # broken mtvec
         0xFFFFFFFF],
        [_dram(),                                        # self-modifying store
         encode("sw", rd=0, rs1=1, rs2=0, imm=8)],
        [encode("auipc", rd=1, imm=0x100),               # store over handler
         encode("sd", rd=0, rs1=1, rs2=1, imm=0)],
        [encode("mul", rd=1, rs1=2, rs2=3),              # mul/div latencies,
         encode("mulh", rd=2, rs1=1, rs2=3),             # mul_high arm,
         encode("div", rd=4, rs1=1, rs2=2),              # divide,
         encode("div", rd=5, rs1=1, rs2=0),              # divide by zero
         encode("rem", rd=6, rs1=1, rs2=2)],
    ]


@pytest.mark.parametrize("params", [
    BoomParams(),
    BoomParams(max_steps=20),
    BoomParams(max_steps=23),
    BoomParams(max_traps=1),
], ids=["default", "steps20", "steps23", "traps1"])
def test_targeted_cases_parity(params):
    assert_parity(_targeted_bodies(), params)


def test_mixed_divergent_batch_parity():
    """One group mixing every targeted case with random filler — lanes
    diverge maximally (halts, queue churn, peels, cutoffs in one group)."""
    gen = RandomRegressionGenerator(body_instructions=32, seed=8)
    bodies = _targeted_bodies() + [t.words for t in gen.generate_batch(16)]
    assert_parity(bodies, lanes=64)


def test_peel_rejoin_boundary_state():
    """A lane that peels mid-group must rejoin with cache/predictor/queue
    state the later vector rounds continue from exactly; neighbours riding
    the vector path the whole time must be untouched by the splice."""
    churn = [_dram(), encode("lw", rd=2, rs1=1, imm=0),
             encode("amoadd.w", rd=3, rs1=1, rs2=2),
             encode("lw", rd=4, rs1=1, imm=256),
             encode("lw", rd=5, rs1=1, imm=512),
             encode("lw", rd=6, rs1=1, imm=0)]
    gen = RandomRegressionGenerator(body_instructions=12, seed=9)
    filler = [t.words for t in gen.generate_batch(LANE_MIN + 2)]
    bodies = filler[:3] + [churn] + filler[3:]
    assert_parity(bodies, lanes=8)


# -- scalar fallbacks ---------------------------------------------------------


def test_fallback_numpy_unavailable(monkeypatch):
    """Without numpy the batch API still works — via the scalar core."""
    import repro.soc.batch_boom as batch_boom_mod
    gen = RandomRegressionGenerator(body_instructions=8, seed=9)
    bodies = [t.words for t in gen.generate_batch(8)]
    monkeypatch.setattr(batch_mod, "_np", None)
    monkeypatch.setattr(batch_boom_mod, "_np", None)
    assert_parity(bodies)


def test_fallback_below_lane_minimum():
    bodies = [[encode("addi", rd=1, rs1=0, imm=i)] for i in range(LANE_MIN - 1)]
    assert_parity(bodies)


def test_fallback_exotic_cache_geometry():
    """Non-2-way geometries stay on the retained scalar core."""
    params = BoomParams(dcache_ways=4)
    gen = RandomRegressionGenerator(body_instructions=12, seed=11)
    bodies = [t.words for t in gen.generate_batch(8)]
    sim = BoomBatchSimulator(params, lanes=8)
    assert not sim._batchable([list(b) for b in bodies], spec.DRAM_BASE)
    assert_parity(bodies, params)


def test_ragged_tail_below_lane_minimum_runs_scalar():
    """A final chunk shorter than LANE_MIN rides the scalar core; results
    must still be seamless across the boundary."""
    gen = RandomRegressionGenerator(body_instructions=8, seed=12)
    bodies = [t.words for t in gen.generate_batch(9)]
    assert_parity(bodies, lanes=8)  # 8 batched + 1 scalar tail


def test_empty_batch():
    assert BoomBatchSimulator().run_batch([]) == []


def test_invalid_lanes_rejected():
    with pytest.raises(ValueError):
        BoomBatchSimulator(lanes=0)
