"""Simulated clock calibration and campaign drivers."""

import pytest

from repro.baselines.random_regression import RandomRegressionGenerator
from repro.fuzzing.campaign import Campaign, CampaignResult, CurvePoint
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.fuzzing.simclock import SimClock
from repro.soc.harness import make_rocket_harness


class TestSimClock:
    def test_anchor_1800_tests_is_52_minutes(self):
        """The paper: ChatFuzz hits 74.96% within 1.8K tests ≈ 52 min."""
        clock = SimClock()
        clock.charge_tests(1800)
        assert clock.minutes == pytest.approx(52, abs=1.0)

    def test_anchor_199k_tests_is_24_hours(self):
        clock = SimClock()
        clock.charge_tests(199_000)
        assert clock.hours == pytest.approx(24, abs=0.1)

    def test_elaboration_charged_once(self):
        clock = SimClock()
        clock.start()
        clock.start()
        assert clock.seconds == clock.elab_seconds

    def test_incremental_charging(self):
        clock = SimClock()
        clock.charge_tests(10)
        clock.charge_tests(10)
        expected = clock.elab_seconds + 20 * clock.per_test_seconds
        assert clock.seconds == pytest.approx(expected)


class TestCampaign:
    @pytest.fixture()
    def loop(self):
        return FuzzLoop(
            RandomRegressionGenerator(body_instructions=8, seed=1),
            make_rocket_harness(),
            batch_size=8,
        )

    def test_run_tests_budget(self, loop):
        result = Campaign(loop, "t").run_tests(24)
        assert result.tests_run == 24
        assert result.final_coverage_percent > 0
        assert result.curve[-1].coverage_percent == result.final_coverage_percent

    def test_curve_is_monotone(self, loop):
        result = Campaign(loop, "t").run_tests(32)
        percents = [p.coverage_percent for p in result.curve]
        assert percents == sorted(percents)

    def test_run_sim_hours(self, loop):
        result = Campaign(loop, "t").run_sim_hours(0.67, max_tests=64)
        assert result.sim_hours >= 0.655  # elaboration alone is ~0.65 h
        assert result.tests_run > 0

    def test_run_to_coverage(self, loop):
        result = Campaign(loop, "t").run_to_coverage(10.0, max_tests=64)
        assert result.final_coverage_percent >= 10.0

    def test_consistent_sim_hours_epoch_across_entry_points(self):
        """All three drivers charge elaboration before the first snapshot.

        run_sim_hours always did; run_tests and run_to_coverage used to
        snapshot at 0.0 sim-hours and only charge elaboration with the first
        batch, so CurvePoint time axes disagreed between entry points.
        """
        def fresh_loop():
            return FuzzLoop(
                RandomRegressionGenerator(body_instructions=8, seed=1),
                make_rocket_harness(),
                batch_size=8,
            )

        results = [
            Campaign(fresh_loop(), "a").run_tests(8),
            Campaign(fresh_loop(), "b").run_sim_hours(0.66, max_tests=8),
            Campaign(fresh_loop(), "c").run_to_coverage(1.0, max_tests=8),
        ]
        elab_hours = SimClock().elab_seconds / 3600.0
        for result in results:
            assert result.curve[0].sim_hours == pytest.approx(elab_hours)
        # Equal test counts => equal elapsed time, whatever the entry point.
        assert len({result.curve[1].sim_hours for result in results}) == 1

    def test_coverage_at_tests_lookup(self):
        result = CampaignResult(name="x", curve=[
            CurvePoint(0, 0.0, 0.0),
            CurvePoint(10, 0.1, 40.0),
            CurvePoint(20, 0.2, 50.0),
        ])
        assert result.coverage_at_tests(15) == 40.0
        assert result.coverage_at_tests(20) == 50.0

    def test_time_to_coverage_lookup(self):
        result = CampaignResult(name="x", curve=[
            CurvePoint(0, 0.0, 0.0),
            CurvePoint(10, 0.5, 60.0),
        ])
        assert result.time_to_coverage(55.0) == 0.5
        assert result.time_to_coverage(99.0) is None


class TestFuzzLoopFeedback:
    def test_observe_called_with_reports(self):
        calls = []

        class Spy:
            def generate_batch(self, n):
                return [[0x13]] * n

            def observe(self, inputs, coverages, scores, reports):
                calls.append((len(inputs), len(coverages), len(scores),
                              len(reports)))

        loop = FuzzLoop(Spy(), make_rocket_harness(), batch_size=4)
        loop.run_batch()
        assert calls == [(4, 4, 4, 4)]

    def test_mismatches_counted_on_buggy_core(self):
        from repro.isa.encoder import encode

        class MulDiv:
            def generate_batch(self, n):
                return [[encode("mul", rd=5, rs1=10, rs2=11)]] * n

        loop = FuzzLoop(MulDiv(), make_rocket_harness(), batch_size=2)
        outcome = loop.run_batch()
        assert outcome.mismatch_count > 0  # Bug2 fires on every mul
        assert loop.detector.unique_count >= 1
