"""Campaign fleets: spec building, slice API, fleet-vs-serial parity,
scheduling acceptance, checkpoint/resume equality, aggregation.

The load-bearing guarantees (ISSUE acceptance):

- a ``FleetRunner`` over N single-campaign specs produces the same unioned
  coverage bitmap and deduped mismatch set as running the N campaigns
  serially (and the union matches the retained set-based reference engine
  over the concatenated test stream);
- ``BanditScheduler`` reaches a fixed coverage target in no more total
  tests than ``RoundRobin`` on the standard rocket config;
- checkpoint → kill → resume yields a result equal to an uninterrupted run.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.baselines.thehuzz import TheHuzzGenerator
from repro.coverage.reference import SetCoverageReport, SetCumulativeCoverage
from repro.fuzzing import Campaign, FuzzLoop
from repro.fuzzing.campaign import CampaignResult, CurvePoint
from repro.fuzzing.executor import SerialExecutor
from repro.fuzzing.fleet import (
    CampaignSpec,
    FleetRunner,
    FleetStats,
    register_generator,
)
from repro.fuzzing.scheduler import BanditScheduler, RoundRobin
from repro.rtl.bitset import Bitset
from repro.soc.harness import make_rocket_harness, rocket_harness_factory


def spec_pair(budget: int = 24) -> list[CampaignSpec]:
    """Two small real-DUT campaign arms (TheHuzz + random, fixed seeds)."""
    return [
        CampaignSpec("thehuzz-0", fuzzer="thehuzz",
                     fuzzer_config={"body_instructions": 16}, seed=5,
                     batch_size=8, budget_tests=budget),
        CampaignSpec("random-0", fuzzer="random",
                     fuzzer_config={"body_instructions": 16}, seed=2,
                     batch_size=8, budget_tests=budget),
    ]


class TestCampaignSpec:
    def test_spec_is_picklable(self):
        for spec in spec_pair():
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec

    def test_unknown_fuzzer_kind(self):
        with pytest.raises(ValueError, match="unknown fuzzer kind"):
            CampaignSpec("x", fuzzer="nope").build_generator()

    def test_register_generator(self):
        class Scripted:
            def __init__(self, seed=0):
                self.seed = seed

            def generate_batch(self, n):
                return [[0x13]] * n

        register_generator("scripted-test", Scripted)
        try:
            generator = CampaignSpec(
                "x", fuzzer="scripted-test", seed=3
            ).build_generator()
            assert isinstance(generator, Scripted) and generator.seed == 3
        finally:
            from repro.fuzzing.fleet import GENERATOR_KINDS

            del GENERATOR_KINDS["scripted-test"]

    def test_harness_kind_string(self):
        factory = CampaignSpec("x", harness="rocket").harness_factory()
        assert factory.kind == "rocket"
        # Invalid harnesses fail at spec construction, not in a worker.
        with pytest.raises(ValueError, match="unknown harness kind"):
            CampaignSpec("x", harness="vax")
        with pytest.raises(TypeError, match="factory or kind"):
            CampaignSpec("x", harness=42)

    def test_build_campaign_forces_serial_executor(self):
        """Nested-pool caveat: spec-built campaigns never own a pool."""
        campaign = spec_pair()[0].build_campaign()
        assert isinstance(campaign.loop.executor, SerialExecutor)

    def test_prebuilt_generator_is_copied_per_build(self):
        from repro.baselines.thehuzz import TheHuzzGenerator

        generator = TheHuzzGenerator(body_instructions=8, seed=1)
        spec = CampaignSpec("x", generator=generator, batch_size=4,
                            budget_tests=4)
        a = spec.build_generator()
        b = spec.build_generator()
        assert a is not generator and a is not b
        a.pool.append([1])  # mutating one build must not leak to the next
        assert spec.build_generator().pool == []

    def test_fingerprint_stable_and_discriminating(self):
        one, two = spec_pair()
        assert one.fingerprint() == spec_pair()[0].fingerprint()
        assert one.fingerprint() != two.fingerprint()
        reseeded = CampaignSpec("thehuzz-0", fuzzer="thehuzz",
                                fuzzer_config={"body_instructions": 16},
                                seed=6, batch_size=8, budget_tests=24)
        assert reseeded.fingerprint() != one.fingerprint()


class TestRunSlice:
    def _loop(self):
        return FuzzLoop(
            TheHuzzGenerator(body_instructions=16, seed=5),
            rocket_harness_factory(),
            batch_size=8,
        )

    def test_slices_equal_one_run_tests(self):
        """Two 8-test slices are indistinguishable from run_tests(16)."""
        sliced = Campaign(self._loop(), "c")
        sliced.run_slice(8)
        result = sliced.run_slice(8)
        whole = Campaign(self._loop(), "c").run_tests(16)
        assert result == whole

    def test_result_property_tracks_accumulation(self):
        campaign = Campaign(self._loop(), "c")
        assert campaign.result is None
        first = campaign.run_slice(8)
        assert campaign.result is first
        second = campaign.run_slice(8)
        assert second is first  # same accumulating object
        assert second.tests_run == 16
        assert [p.tests for p in second.curve] == [0, 8, 16]

    def test_state_roundtrip_reproduces_future(self):
        campaign = Campaign(self._loop(), "c")
        campaign.run_slice(8)
        frozen = pickle.dumps(campaign.state_dict())
        expected = campaign.run_slice(8)
        clone = Campaign(self._loop(), "c")
        clone.load_state_dict(pickle.loads(frozen))
        assert clone.run_slice(8) == expected


class TestFleetVsSerialParity:
    """Acceptance pin: fleet == N serial campaigns, bit for bit."""

    def _serial_results(self, specs):
        return [spec.build_campaign().run_slice(spec.budget_tests)
                for spec in specs]

    def test_in_process_fleet_matches_serial(self):
        specs = spec_pair()
        serial = self._serial_results(specs)
        with FleetRunner(specs, n_workers=0) as fleet:
            result = fleet.run()
        assert result.campaigns == serial
        union = Bitset(
            serial[0].final_coverage.to_int()
            | serial[1].final_coverage.to_int(),
            serial[0].total_arms,
        )
        assert result.union_coverage() == union
        assert result.unique_signatures == {
            m.signature for r in serial for m in r.mismatches
        }

    def test_pooled_fleet_matches_serial(self):
        specs = spec_pair()
        serial = self._serial_results(specs)
        with FleetRunner(specs, n_workers=2) as fleet:
            result = fleet.run()
        assert result.campaigns == serial

    def test_scheduled_fleet_matches_whole_budget_run(self):
        """Slicing the budget changes nothing about the final state."""
        specs = spec_pair()
        with FleetRunner(specs, n_workers=0) as fleet:
            whole = fleet.run()
        with FleetRunner(specs, n_workers=0) as fleet:
            sliced = fleet.run_scheduled(RoundRobin(), slice_tests=8)
        for a, b in zip(sliced.campaigns, whole.campaigns):
            assert a.final_coverage == b.final_coverage
            assert a.tests_run == b.tests_run
            assert {m.signature for m in a.mismatches} == \
                {m.signature for m in b.mismatches}

    def test_union_matches_reference_engine_over_concatenated_stream(self):
        """Satellite pin: cross-campaign bitmap union == the set-based
        reference engine run serially over the concatenated test stream,
        in whole-budget, rounds-scheduled and streaming-scheduled modes
        alike.

        Feedback-free generators, so the replayed serial stream is
        guaranteed identical to what the campaigns generated (a mutation
        fuzzer's stream depends on loop feedback the replay below skips).
        """
        specs = [
            CampaignSpec("random-a", fuzzer="random",
                         fuzzer_config={"body_instructions": 16}, seed=3,
                         batch_size=8, budget_tests=16),
            CampaignSpec("random-b", fuzzer="random",
                         fuzzer_config={"body_instructions": 16}, seed=4,
                         batch_size=8, budget_tests=16),
        ]
        with FleetRunner(specs, n_workers=0) as fleet:
            result = fleet.run()

        harness = make_rocket_harness()
        reference = SetCumulativeCoverage(total_arms=harness.total_arms)
        for spec in specs:
            generator = spec.build_generator()
            consumed = 0
            while consumed < spec.budget_tests:
                for test in generator.generate_batch(spec.batch_size):
                    _, _, report = harness.run_differential(list(test.words))
                    reference.merge(SetCoverageReport(
                        hits=frozenset(report.hits),
                        total_arms=report.total_arms,
                    ))
                consumed += spec.batch_size

        assert result.union_coverage() == reference.hits
        assert result.union_percent == pytest.approx(reference.percent)

        for mode in ("rounds", "streaming"):
            with FleetRunner(specs, n_workers=0) as fleet:
                scheduled = fleet.run_scheduled(RoundRobin(), slice_tests=8,
                                                mode=mode)
            assert scheduled.union_coverage() == reference.hits


class TestStreamingMode:
    """The event-driven dispatch loop: parity with rounds, stats, modes."""

    def _run(self, mode, n_workers=0, scheduler=None, **kwargs):
        with FleetRunner(spec_pair(budget=24), n_workers=n_workers) as fleet:
            result = fleet.run_scheduled(
                scheduler if scheduler is not None else RoundRobin(),
                slice_tests=8, mode=mode, **kwargs,
            )
            return result, fleet.last_stats

    def test_streaming_matches_rounds_in_process(self):
        """Full per-arm budgets: streaming == rounds, campaign for
        campaign (the tentpole's fleet-union parity acceptance pin)."""
        rounds, _ = self._run("rounds")
        streaming, _ = self._run("streaming")
        assert streaming.campaigns == rounds.campaigns
        assert streaming.union_coverage() == rounds.union_coverage()

    def test_pooled_streaming_matches_rounds(self):
        """Interleaving may differ on a pool, but per-campaign
        trajectories are deterministic, so final results agree."""
        rounds, _ = self._run("rounds")
        pooled, stats = self._run("streaming", n_workers=2)
        assert pooled.campaigns == rounds.campaigns
        assert stats.mode == "streaming" and stats.n_workers == 2

    def test_streaming_with_bandit(self):
        rounds, _ = self._run("rounds", scheduler=BanditScheduler())
        streaming, _ = self._run("streaming", scheduler=BanditScheduler())
        assert streaming.campaigns == rounds.campaigns

    def test_streaming_respects_per_arm_budgets(self):
        result, stats = self._run("streaming")
        assert [c.tests_run for c in result.campaigns] == [24, 24]
        assert stats.slices == 6  # 2 arms x 24 tests / 8-test slices

    def test_streaming_respects_total_tests_cap(self):
        result, _ = self._run("streaming", total_tests=16)
        assert result.total_tests == 16

    def test_streaming_respects_target_percent(self):
        result, _ = self._run("streaming", target_percent=30.0)
        assert result.union_percent >= 30.0
        full, _ = self._run("streaming")
        assert result.total_tests < full.total_tests

    def test_invalid_mode_rejected(self):
        with FleetRunner(spec_pair(), n_workers=0) as fleet:
            with pytest.raises(ValueError, match="rounds.*streaming"):
                fleet.run_scheduled(mode="async")

    def test_stats_account_wall_busy_and_utilisation(self):
        result, stats = self._run("streaming")
        assert isinstance(stats, FleetStats)
        assert stats.wall_seconds > 0
        assert 0 < stats.busy_seconds <= stats.wall_seconds * 1.05
        assert stats.tests == result.total_tests
        assert 0.0 < stats.utilisation <= 1.05
        assert stats.worker_slots == 1  # in-process

    def test_whole_budget_run_records_stats(self):
        with FleetRunner(spec_pair(budget=16), n_workers=0) as fleet:
            result = fleet.run()
            stats = fleet.last_stats
        assert stats.mode == "whole-budget"
        assert stats.slices == 2
        assert stats.tests == result.total_tests

    def test_streaming_closed_runner_refuses_work(self):
        runner = FleetRunner(spec_pair(), n_workers=0)
        runner.close()
        with pytest.raises(RuntimeError, match="closed"):
            runner.run_scheduled(mode="streaming")


class TestMixedArmFleet:
    """Heterogeneous fleet: one Rocket arm + one BOOM arm, both riding
    their kind's batch engines (``golden_lanes=dut_lanes=8``)."""

    def _specs(self, golden_lanes=0, dut_lanes=0):
        return [
            CampaignSpec("rocket-arm", fuzzer="thehuzz",
                         fuzzer_config={"body_instructions": 16}, seed=5,
                         harness="rocket", golden_lanes=golden_lanes,
                         dut_lanes=dut_lanes, batch_size=8, budget_tests=24),
            CampaignSpec("boom-arm", fuzzer="random",
                         fuzzer_config={"body_instructions": 16}, seed=2,
                         harness="boom", golden_lanes=golden_lanes,
                         dut_lanes=dut_lanes, batch_size=8, budget_tests=24),
        ]

    def test_streaming_lanes_bit_identical_to_scalar(self):
        """Vector lanes are a pure perf knob fleet-wide: every arm's
        trace stream, curve and final coverage bitmap — hence any union
        taken over them — must equal the all-scalar fleet's exactly."""
        def run(**lanes):
            with FleetRunner(self._specs(**lanes)) as fleet:
                return fleet.run_scheduled(RoundRobin(), slice_tests=8,
                                           mode="streaming")

        scalar = run()
        vector = run(golden_lanes=8, dut_lanes=8)
        assert vector.campaigns == scalar.campaigns
        for got, ref in zip(vector.campaigns, scalar.campaigns):
            assert got.final_coverage == ref.final_coverage
            assert got.mismatches == ref.mismatches


class TestScheduling:
    def _arms(self, budget=160):
        """One strong arm and two weak ones (2-instruction random bodies
        plateau almost immediately) on the standard rocket config."""
        weak = {"body_instructions": 2}
        return [
            CampaignSpec("thehuzz", fuzzer="thehuzz",
                         fuzzer_config={"body_instructions": 16}, seed=5,
                         batch_size=8, budget_tests=budget),
            CampaignSpec("weak-a", fuzzer="random", fuzzer_config=dict(weak),
                         seed=1, batch_size=8, budget_tests=budget),
            CampaignSpec("weak-b", fuzzer="random", fuzzer_config=dict(weak),
                         seed=7, batch_size=8, budget_tests=budget),
        ]

    def test_bandit_no_worse_than_round_robin_to_target(self):
        """Acceptance pin: UCB1 reaches the coverage target within the
        round-robin test spend (it exploits the productive arm instead of
        feeding exhausted ones)."""
        target = 66.0
        with FleetRunner(self._arms(), n_workers=0) as fleet:
            rr = fleet.run_scheduled(RoundRobin(), slice_tests=8,
                                     target_percent=target)
        with FleetRunner(self._arms(), n_workers=0) as fleet:
            bandit = fleet.run_scheduled(
                BanditScheduler(exploration=0.05), slice_tests=8,
                target_percent=target,
            )
        assert rr.union_percent >= target
        assert bandit.union_percent >= target
        assert bandit.total_tests <= rr.total_tests

    def test_total_tests_cap_stops_the_fleet(self):
        with FleetRunner(self._arms(budget=64), n_workers=0) as fleet:
            result = fleet.run_scheduled(RoundRobin(), slice_tests=8,
                                         total_tests=24)
        assert result.total_tests == 24

    def test_pooled_scheduled_matches_in_process_at_same_concurrency(self):
        """Placement independence: slices carry their state, so a worker
        pool changes wall-clock only, never the scheduled results."""
        def arms():
            return [
                CampaignSpec(name, fuzzer="random",
                             fuzzer_config={"body_instructions": 8},
                             seed=seed, batch_size=8, budget_tests=16)
                for name, seed in (("a", 1), ("b", 2), ("c", 3))
            ]

        with FleetRunner(arms(), n_workers=2) as fleet:
            pooled = fleet.run_scheduled(RoundRobin(), slice_tests=8)
        with FleetRunner(arms(), n_workers=0) as fleet:
            local = fleet.run_scheduled(RoundRobin(), slice_tests=8,
                                        concurrent_slices=2)
        assert pooled.campaigns == local.campaigns

    def test_per_arm_budgets_are_respected(self):
        specs = spec_pair(budget=16)
        with FleetRunner(specs, n_workers=0) as fleet:
            result = fleet.run_scheduled(RoundRobin(), slice_tests=8)
        assert [c.tests_run for c in result.campaigns] == [16, 16]


class TestCheckpointResume:
    def test_kill_and_resume_equals_uninterrupted(self, tmp_path):
        """Acceptance pin: checkpoint → kill → resume == one clean run."""
        specs = spec_pair(budget=40)
        with FleetRunner(specs, n_workers=0) as fleet:
            uninterrupted = fleet.run_scheduled(RoundRobin(), slice_tests=8)
        # "Kill" after 16 tests, then resume from the checkpoint with a
        # fresh runner (fresh scheduler instance, fresh worker shells).
        with FleetRunner(specs, n_workers=0,
                         checkpoint_dir=tmp_path) as fleet:
            fleet.run_scheduled(RoundRobin(), slice_tests=8, total_tests=16)
        with FleetRunner(specs, n_workers=0,
                         checkpoint_dir=tmp_path) as fleet:
            resumed = fleet.run_scheduled(RoundRobin(), slice_tests=8)
        assert resumed.campaigns == uninterrupted.campaigns

    def test_streaming_kill_and_resume_equals_uninterrupted(self, tmp_path):
        """Satellite pin: incremental (per-slice) checkpoints resume to the
        same final state as an uninterrupted streaming run.  In-process
        streaming is fully deterministic, so equality is exact."""
        specs = spec_pair(budget=40)
        with FleetRunner(specs, n_workers=0) as fleet:
            uninterrupted = fleet.run_scheduled(RoundRobin(), slice_tests=8,
                                                mode="streaming")
        with FleetRunner(specs, n_workers=0,
                         checkpoint_dir=tmp_path) as fleet:
            fleet.run_scheduled(RoundRobin(), slice_tests=8,
                                mode="streaming", total_tests=16)
        with FleetRunner(specs, n_workers=0,
                         checkpoint_dir=tmp_path) as fleet:
            resumed = fleet.run_scheduled(RoundRobin(), slice_tests=8,
                                          mode="streaming")
        assert resumed.campaigns == uninterrupted.campaigns

    def test_streaming_checkpoint_resumes_into_rounds_and_back(self, tmp_path):
        """Incremental checkpoints are mode-agnostic: a fleet killed in
        streaming mode can resume in round mode (and vice versa) because
        the snapshot format is identical — with full per-arm budgets the
        final result matches either mode's uninterrupted run."""
        specs = spec_pair(budget=40)
        with FleetRunner(specs, n_workers=0) as fleet:
            uninterrupted = fleet.run_scheduled(RoundRobin(), slice_tests=8)
        with FleetRunner(specs, n_workers=0,
                         checkpoint_dir=tmp_path) as fleet:
            fleet.run_scheduled(RoundRobin(), slice_tests=8,
                                mode="streaming", total_tests=16)
        with FleetRunner(specs, n_workers=0,
                         checkpoint_dir=tmp_path) as fleet:
            resumed = fleet.run_scheduled(RoundRobin(), slice_tests=8,
                                          mode="rounds")
        assert resumed.campaigns == uninterrupted.campaigns

    def test_streaming_checkpoints_are_per_slice(self, tmp_path):
        """The incremental contract itself: after a single-slice cap, the
        checkpoint holds exactly that slice — not a round barrier's worth
        of arms."""
        specs = spec_pair(budget=40)
        with FleetRunner(specs, n_workers=0,
                         checkpoint_dir=tmp_path) as fleet:
            fleet.run_scheduled(RoundRobin(), slice_tests=8,
                                mode="streaming", total_tests=8)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["arms"] == {"0": {"tests_run": 8}}
        assert (tmp_path / "campaign_0.json").exists()
        assert not (tmp_path / "campaign_1.json").exists()

    def test_whole_budget_resume_skips_completed_arms(self, tmp_path):
        specs = spec_pair(budget=16)
        with FleetRunner(specs, n_workers=0, checkpoint_dir=tmp_path) as fleet:
            first = fleet.run()
        # A fresh runner over the same checkpoint re-runs nothing: results
        # are rebuilt from the snapshot, bit-identical.
        with FleetRunner(specs, n_workers=0, checkpoint_dir=tmp_path) as fleet:
            second = fleet.run()
        assert second.campaigns == first.campaigns

    def test_checkpoint_files_are_json_plus_bitmap(self, tmp_path):
        specs = spec_pair(budget=16)
        with FleetRunner(specs, n_workers=0, checkpoint_dir=tmp_path) as fleet:
            result = fleet.run()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert [int(k) for k in manifest["arms"]] == [0, 1]
        for index, campaign in enumerate(result.campaigns):
            document = json.loads(
                (tmp_path / f"campaign_{index}.json").read_text()
            )
            assert document["name"] == campaign.name
            assert document["tests_run"] == campaign.tests_run
            assert document["covered_arms"] == len(campaign.final_coverage)
            cov = (tmp_path / f"campaign_{index}.cov").read_bytes()
            assert cov == campaign.final_coverage.to_bytes()
            assert (tmp_path / f"campaign_{index}.pkl").exists()

    def test_torn_checkpoint_is_detected(self, tmp_path):
        """A kill can interleave files from different rounds; every arm
        artifact carries the round's test count, so the mix is refused."""
        specs = spec_pair(budget=16)
        with FleetRunner(specs, n_workers=0, checkpoint_dir=tmp_path) as fleet:
            fleet.run()
        pkl_path = tmp_path / "campaign_0.pkl"
        opaque = pickle.loads(pkl_path.read_bytes())
        opaque["tests_run"] += 8  # .pkl from a newer round than manifest/json
        pkl_path.write_bytes(pickle.dumps(opaque))
        with FleetRunner(specs, n_workers=0, checkpoint_dir=tmp_path) as fleet:
            with pytest.raises(ValueError, match="torn checkpoint"):
                fleet.run()

    def test_foreign_checkpoint_is_rejected(self, tmp_path):
        specs = spec_pair(budget=16)
        with FleetRunner(specs, n_workers=0, checkpoint_dir=tmp_path) as fleet:
            fleet.run()
        other = [CampaignSpec("thehuzz-0", fuzzer="thehuzz", seed=99,
                              batch_size=8, budget_tests=16),
                 specs[1]]
        with FleetRunner(other, n_workers=0, checkpoint_dir=tmp_path) as fleet:
            with pytest.raises(ValueError, match="different campaign specs"):
                fleet.run()


class TestFleetRunnerValidation:
    def test_needs_specs(self):
        with pytest.raises(ValueError, match="at least one"):
            FleetRunner([])

    def test_unique_names(self):
        spec = spec_pair()[0]
        with pytest.raises(ValueError, match="unique"):
            FleetRunner([spec, spec])

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError, match="n_workers"):
            FleetRunner(spec_pair(), n_workers=-1)

    def test_closed_runner_refuses_work(self):
        runner = FleetRunner(spec_pair(), n_workers=0)
        runner.close()
        runner.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            runner.run()


class TestFleetResultAggregation:
    """Pure aggregation logic on hand-built campaign results (no DUT)."""

    def _campaign(self, name, arms, universe=16, tests=10, hours=1.0):
        hits = Bitset.from_iterable(arms, universe)
        return CampaignResult(
            name=name,
            curve=[CurvePoint(0, 0.5, 0.0, Bitset(0, universe)),
                   CurvePoint(tests, hours,
                              100.0 * len(hits) / universe, hits)],
            tests_run=tests,
            sim_hours=hours,
            final_coverage_percent=100.0 * len(hits) / universe,
            final_coverage=hits,
        )

    def test_union_and_percent(self):
        from repro.fuzzing.fleet import FleetResult

        result = FleetResult([
            self._campaign("a", {0, 1, 2}),
            self._campaign("b", {2, 3}),
        ])
        assert result.union_coverage() == {0, 1, 2, 3}
        assert result.union_percent == pytest.approx(100.0 * 4 / 16)
        assert result.total_tests == 20

    def test_mixed_universes_are_rejected(self):
        from repro.fuzzing.fleet import FleetResult

        result = FleetResult([
            self._campaign("rocket", {0, 1}, universe=16),
            self._campaign("boom", {0, 1}, universe=32),
        ])
        with pytest.raises(ValueError, match="different DUT universes"):
            result.union_coverage()

    def test_merged_curve_unions_on_shared_epoch(self):
        from repro.fuzzing.fleet import FleetResult

        result = FleetResult([
            self._campaign("a", {0, 1}, tests=10, hours=1.0),
            self._campaign("b", {1, 2, 3}, tests=20, hours=2.0),
        ])
        merged = result.merged_curve()
        # Distinct times: 0.5 (both initial snapshots), 1.0, 2.0.
        assert [point.sim_hours for point in merged] == [0.5, 1.0, 2.0]
        assert merged[0].coverage_percent == 0.0
        assert merged[1].hits == {0, 1}          # only campaign a has run
        assert merged[2].hits == {0, 1, 2, 3}    # union of both
        assert merged[-1].tests == 30
        percents = [point.coverage_percent for point in merged]
        assert percents == sorted(percents)
        assert merged[-1].coverage_percent == pytest.approx(
            result.union_percent
        )

    def test_summary_names_every_campaign(self):
        from repro.fuzzing.fleet import FleetResult

        result = FleetResult([self._campaign("alpha", {0}),
                              self._campaign("beta", {1})])
        summary = result.summary()
        assert "alpha" in summary and "beta" in summary
        assert "2 campaigns" in summary
