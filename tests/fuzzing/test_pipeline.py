"""Pipelined FuzzLoop: parity with the synchronous path, the one-batch
feedback-lag contract, drain/close lifecycle, and state-capture guards.

The pipelined mode overlaps generation of batch N+1 with execution of
batch N.  The load-bearing guarantees:

- results are folded whole-batch, in submission order, so for a
  feedback-free generator the pipelined loop is byte-identical to the
  synchronous one (serial or sharded executor alike);
- feedback-driven generators see ``observe`` calls in submission order but
  lagged one batch behind generation — pinned explicitly below;
- close is idempotent and safe with a prefetched batch in flight (no
  hangs, no leaked workers, no half-folded state);
- ``state_dict`` refuses to snapshot around an in-flight batch.
"""

from __future__ import annotations

import pytest

from repro.baselines.random_regression import RandomRegressionGenerator
from repro.baselines.thehuzz import TheHuzzGenerator
from repro.fuzzing import Campaign, FuzzLoop
from repro.fuzzing.pool import ShardedExecutor
from repro.soc.harness import rocket_harness_factory

BATCH = 8


def _loop(pipeline: bool, executor=None, generator=None) -> FuzzLoop:
    return FuzzLoop(
        generator if generator is not None
        else RandomRegressionGenerator(body_instructions=8, seed=3),
        rocket_harness_factory(),
        batch_size=BATCH,
        pipeline=pipeline,
        executor=executor,
    )


def _state_fingerprint(loop: FuzzLoop) -> tuple:
    return (
        loop.tests_run,
        loop.total_percent,
        loop.clock.seconds,
        loop.detector.raw_count,
        loop.detector.unique_count,
        loop.calculator.cumulative.hits,
    )


class TestPipelinedParity:
    def test_serial_pipelined_matches_sync(self):
        """SerialExecutor degenerates: same folds, same state, batch for
        batch (the executor defers to collect time)."""
        sync = _loop(pipeline=False)
        outcomes_sync = [sync.run_batch() for _ in range(4)]
        piped = _loop(pipeline=True)
        outcomes_piped = [piped.run_batch() for _ in range(3)]
        outcomes_piped.append(piped.drain())  # fold the in-flight batch
        for a, b in zip(outcomes_piped, outcomes_sync):
            assert [i.words for i in a.inputs] == [i.words for i in b.inputs]
            assert a.scores == b.scores
            assert a.coverages == b.coverages
            assert a.mismatch_count == b.mismatch_count
            assert a.total_percent == b.total_percent
        assert _state_fingerprint(piped) == _state_fingerprint(sync)

    def test_sharded_pipelined_matches_sync(self):
        sync = _loop(pipeline=False)
        for _ in range(4):
            sync.run_batch()
        piped = _loop(pipeline=True, executor=ShardedExecutor(n_workers=2))
        with piped:
            for _ in range(3):
                piped.run_batch()
            piped.drain()
            assert _state_fingerprint(piped) == _state_fingerprint(sync)

    def test_each_run_batch_folds_exactly_one_batch(self):
        piped = _loop(pipeline=True)
        assert piped.run_batch().inputs  # first call submits then folds
        assert piped.tests_run == BATCH
        piped.run_batch()
        assert piped.tests_run == 2 * BATCH
        piped.close()


class TestFeedbackLagContract:
    def test_observe_in_order_but_one_batch_behind_generation(self):
        """Generation of batch N+1 happens before observe(batch N); the
        observe stream itself stays whole-batch and in submission order."""
        events: list[tuple[str, int]] = []

        class Recording(RandomRegressionGenerator):
            def generate_batch(self, n):
                events.append(("generate", len([e for e in events
                                                if e[0] == "generate"]) + 1))
                return super().generate_batch(n)

            def observe(self, inputs, coverages, scores, reports=None):
                events.append(("observe", len([e for e in events
                                               if e[0] == "observe"]) + 1))

        loop = _loop(pipeline=True,
                     generator=Recording(body_instructions=8, seed=3))
        for _ in range(2):
            loop.run_batch()
        loop.drain()
        # 3 folds need 3 generates; pipelining keeps one extra prefetched
        # only *between* calls — drain folds it without generating more.
        assert events == [
            ("generate", 1), ("generate", 2), ("observe", 1),
            ("generate", 3), ("observe", 2), ("observe", 3),
        ]

    def test_feedback_driven_generator_runs_but_streams_differ(self):
        """TheHuzz uses observe for corpus selection, so the pipelined
        stream legitimately diverges from sync after the first batch — the
        documented one-batch lag, not a bug.  Totals still account."""
        sync = _loop(pipeline=False,
                     generator=TheHuzzGenerator(body_instructions=8, seed=5))
        piped = _loop(pipeline=True,
                      generator=TheHuzzGenerator(body_instructions=8, seed=5))
        first_sync = sync.run_batch()
        first_piped = piped.run_batch()
        # Batch 1 predates any feedback: identical in both modes.
        assert ([i.words for i in first_piped.inputs]
                == [i.words for i in first_sync.inputs])
        sync.run_batch()
        piped.run_batch()
        piped.drain()
        assert piped.tests_run == 3 * BATCH
        piped.close()


class TestLifecycle:
    def test_drain_without_prefetch_returns_none(self):
        piped = _loop(pipeline=True)
        assert piped.drain() is None
        sync = _loop(pipeline=False)
        sync.run_batch()
        assert sync.drain() is None  # sync loops never hold a prefetch

    def test_close_is_idempotent_and_discards_prefetch(self):
        piped = _loop(pipeline=True)
        piped.run_batch()
        assert piped._inflight is not None
        piped.close()
        assert piped._inflight is None
        piped.close()  # double close must not raise
        assert piped.tests_run == BATCH  # the discarded prefetch never folded

    def test_close_with_inflight_sharded_batch_reaps_workers(self):
        piped = _loop(pipeline=True, executor=ShardedExecutor(n_workers=2))
        piped.run_batch()
        piped.close()  # must return (no hang) and shut the pool down
        piped.close()
        assert piped.executor._pool is None

    def test_state_dict_refuses_inflight_then_works_after_drain(self):
        piped = _loop(pipeline=True)
        piped.run_batch()
        with pytest.raises(RuntimeError, match="drain"):
            piped.state_dict()
        piped.drain()
        sync = _loop(pipeline=False)
        sync.run_batch()
        sync.run_batch()
        snapshot, expected = piped.state_dict(), sync.state_dict()
        for key in ("coverage", "clock_seconds", "clock_started", "tests_run"):
            assert snapshot[key] == expected[key]

    def test_campaign_context_manager_with_pipelined_loop(self):
        sync_result = Campaign(_loop(pipeline=False), "c").run_tests(24)
        with Campaign(_loop(pipeline=True), "c") as campaign:
            result = campaign.run_tests(24)
        assert result.tests_run == sync_result.tests_run
        assert result.final_coverage == sync_result.final_coverage
        assert result.curve == sync_result.curve
