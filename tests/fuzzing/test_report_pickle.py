"""Coverage reports across the process pool: payload size and equality.

The sharded executor's workers ship every test's ``DifferentialResult``
(traces + coverage report) back through the result pipe; the bitset engine
exists partly to shrink that payload.  These tests pin the pickle contract:
packed reports round-trip exactly (same hits, same arm names), the wire
payload is an order of magnitude below the frozenset encoding it replaced,
and a report that actually crossed a worker-process boundary equals its
parent-side twin.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor

from repro.coverage.reference import SetConditionCoverage, SetCoverageReport
from repro.rtl.bitset import Bitset
from repro.rtl.coverage import ConditionCoverage
from repro.rtl.report import CoverageReport
from repro.soc.harness import make_rocket_harness


def make_report(n_conditions=200, stride=3) -> CoverageReport:
    cov = ConditionCoverage()
    handles = [cov.declare(f"unit.c{i}") for i in range(n_conditions)]
    cov.freeze()
    for handle in handles[::stride]:
        cov.record(handle, True)
        cov.record(handle, handle % 2)
    return CoverageReport.from_coverage(cov, cycles=99)


class TestPickleRoundtrip:
    def test_equality_and_fields(self):
        report = make_report()
        again = pickle.loads(pickle.dumps(report))
        assert again == report
        assert again.hits == report.hits
        assert again.total_arms == report.total_arms
        assert again.cycles == 99
        assert again.standalone_count == report.standalone_count

    def test_payload_order_of_magnitude_below_frozenset(self):
        """A result chunk of packed reports (the sharded executor's wire
        shape) beats the set-based encoding by >= 5x at RocketCore scale
        (~hundreds of arms)."""
        total_arms = 400
        packed_chunk, legacy_chunk = [], []
        for shift in range(16):  # 16 distinct, realistically dense reports
            hits = {(a + shift) % total_arms for a in range(0, total_arms, 2)}
            packed_chunk.append(CoverageReport(hits=hits, total_arms=total_arms))
            legacy_chunk.append(SetCoverageReport(
                hits=frozenset(hits), total_arms=total_arms))
        packed_size = len(pickle.dumps(packed_chunk))
        legacy_size = len(pickle.dumps(legacy_chunk))
        assert packed_size * 5 < legacy_size


def _identity(report: CoverageReport) -> CoverageReport:
    return report


class TestAcrossProcessPool:
    def test_report_survives_worker_boundary(self):
        report = make_report()
        with ProcessPoolExecutor(max_workers=1) as pool:
            returned = pool.submit(_identity, report).result()
        assert returned == report
        assert isinstance(returned.hits, Bitset)
        assert set(returned.hits) == set(report.hits)

    def test_real_dut_report_arm_names_stable_across_pool(self):
        """Every set bit of a pool-crossed report still resolves to the same
        declared arm name on the parent's coverage database."""
        harness = make_rocket_harness()
        _, report = harness.run_dut([0x00000013] * 4)  # nops
        with ProcessPoolExecutor(max_workers=1) as pool:
            returned = pool.submit(_identity, report).result()
        cov = harness.core.cov
        assert {cov.arm_name(a) for a in returned.hits} == {
            cov.arm_name(a) for a in report.hits
        }
