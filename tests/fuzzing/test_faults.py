"""Fault-injection coverage for the fleet fault-tolerance layer.

Every recovery path of ``repro.fuzzing.fleet`` is pinned here with the
deterministic chaos harness from ``repro.fuzzing.faults`` (ISSUE 6
acceptance):

- slice retry: an injected failure is retried and the final
  ``FleetResult`` is bit-identical to the fault-free run, in ``run()``
  and both ``run_scheduled`` modes;
- pool self-healing: an injected worker death mid-fleet rebuilds the
  pool, requeues the in-flight slices, and still matches the fault-free
  result (``FleetRunner`` and ``ShardedExecutor``);
- timeouts: a hung slice trips ``slice_timeout`` (post-hoc in-process, a
  recycled pool when pooled) and the retry restores parity;
- quarantine: an arm whose harness always fails is removed after
  ``max_retries`` while the rest of the fleet reaches its budgets, the
  decision round-trips through checkpoints, and the scheduler hears
  ``on_arm_quarantined``;
- crash/resume equality: a fleet killed by an injected crash resumes to
  a bit-identical result (rounds + streaming, in-process + pooled);
- torn-write recovery: ``checkpoint_recover=True`` resumes past a torn
  arm snapshot, reporting what was dropped, instead of refusing.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.fuzzing import FuzzLoop, ShardedExecutor
from repro.fuzzing.faults import (
    FAULT_KINDS,
    ChaosHarnessFactory,
    FaultPlan,
    FaultPoint,
    FaultyHarnessFactory,
    InjectedCrash,
    InjectedFault,
    fire,
    reset_build_counts,
)
from repro.fuzzing.fleet import (
    CampaignSpec,
    FleetHealth,
    FleetRunner,
    QuarantinedArm,
    SliceTimeout,
)
from repro.fuzzing.scheduler import RoundRobin
from repro.soc.harness import harness_factory, rocket_harness_factory


@pytest.fixture(autouse=True)
def _fresh_build_counts():
    reset_build_counts()
    yield
    reset_build_counts()


def spec_pair(budget: int = 24) -> list[CampaignSpec]:
    """Two small real-DUT campaign arms (TheHuzz + random, fixed seeds)."""
    return [
        CampaignSpec("thehuzz-0", fuzzer="thehuzz",
                     fuzzer_config={"body_instructions": 16}, seed=5,
                     batch_size=8, budget_tests=budget),
        CampaignSpec("random-0", fuzzer="random",
                     fuzzer_config={"body_instructions": 16}, seed=2,
                     batch_size=8, budget_tests=budget),
    ]


def faulty_spec(budget: int = 24, label: str = "bad",
                kind: str = "raise") -> CampaignSpec:
    """An arm whose harness factory always fires ``kind`` at build time."""
    return CampaignSpec(label, fuzzer="random",
                        fuzzer_config={"body_instructions": 16}, seed=3,
                        batch_size=8, budget_tests=budget,
                        harness=FaultyHarnessFactory(
                            harness_factory("rocket"), kind=kind,
                            label=label))


def assert_campaigns_equal(a, b) -> None:
    """Bit-identical per-campaign results (the fleet parity invariant)."""
    assert [c.name for c in a.campaigns] == [c.name for c in b.campaigns]
    for x, y in zip(a.campaigns, b.campaigns):
        assert x.tests_run == y.tests_run
        assert x.final_coverage.to_int() == y.final_coverage.to_int()
        assert [p.coverage_percent for p in x.curve] == \
            [p.coverage_percent for p in y.curve]
        assert {m.signature for m in x.mismatches} == \
            {m.signature for m in y.mismatches}


class TestFaultPlan:
    def test_find_is_keyed_by_arm_ordinal_attempt(self):
        point = FaultPoint(1, 2, attempt=1, kind="raise")
        plan = FaultPlan([point])
        assert plan.find(1, 2, 1) is point
        assert plan.find(1, 2, 0) is None
        assert plan.find(1, 1, 1) is None
        assert plan.find(0, 2, 1) is None
        assert len(plan) == 1 and list(plan) == [point]

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError, match="duplicate fault points"):
            FaultPlan([FaultPoint(0, 0), FaultPoint(0, 0, kind="hang")])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPoint(0, 0, kind="explode")
        with pytest.raises(ValueError, match="unknown fault kind"):
            fire("explode", "ctx")

    def test_seeded_plan_is_deterministic(self):
        one = FaultPlan.seeded(7, n_arms=3, n_slices=10, rate=0.3,
                               kinds=("raise", "hang"))
        two = FaultPlan.seeded(7, n_arms=3, n_slices=10, rate=0.3,
                               kinds=("raise", "hang"))
        assert one.points == two.points
        other = FaultPlan.seeded(8, n_arms=3, n_slices=10, rate=0.3,
                                 kinds=("raise", "hang"))
        assert one.points != other.points
        assert all(p.kind in ("raise", "hang") for p in one.points)
        assert all(p.attempt == 0 for p in one.points)

    def test_seeded_rate_extremes(self):
        assert len(FaultPlan.seeded(1, 2, 5, rate=0.0)) == 0
        assert len(FaultPlan.seeded(1, 2, 5, rate=1.0)) == 10

    def test_fire_kinds(self):
        with pytest.raises(InjectedFault):
            fire("raise", "ctx")
        with pytest.raises(InjectedCrash):
            fire("crash", "ctx")
        fire("hang", "ctx", hang_seconds=0.0)  # returns normally
        assert isinstance(InjectedFault("x"), Exception)
        assert not isinstance(InjectedCrash("x"), Exception)
        assert set(FAULT_KINDS) == {"raise", "hang", "die", "crash"}

    def test_points_are_picklable(self):
        plan = FaultPlan([FaultPoint(0, 1, kind="die")])
        clone = pickle.loads(pickle.dumps(plan.points[0]))
        assert clone == plan.points[0]


class TestChaosWrappers:
    def test_faulty_factory_fails_first_n_builds(self):
        wrapped = FaultyHarnessFactory(rocket_harness_factory(),
                                       fail_builds=2, label="first-n")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                wrapped()
        harness = wrapped()  # third build succeeds
        assert harness.total_arms > 0

    def test_faulty_factory_always_fails_by_default(self):
        wrapped = FaultyHarnessFactory(rocket_harness_factory(),
                                       label="always")
        for _ in range(3):
            with pytest.raises(InjectedFault):
                wrapped()

    def test_wrappers_are_picklable(self):
        for wrapped in (FaultyHarnessFactory(rocket_harness_factory()),
                        ChaosHarnessFactory(rocket_harness_factory(),
                                            once_dir="/tmp/x")):
            assert pickle.loads(pickle.dumps(wrapped)) == wrapped

    def test_chaos_harness_fires_on_nth_test_once(self, tmp_path):
        chaos = ChaosHarnessFactory(rocket_harness_factory(), fail_test=1,
                                    kind="raise", once_dir=str(tmp_path),
                                    label="nth")
        harness = chaos()
        assert harness.total_arms > 0  # proxy passes metadata through
        harness.run_differential([0x13])  # test 0: clean
        with pytest.raises(InjectedFault):
            harness.run_differential([0x13])  # test 1: fires, takes latch
        assert chaos.latch_path.exists()
        # A second harness (a respawned worker) must not re-fire.
        fresh = chaos()
        fresh.run_differential([0x13])
        fresh.run_differential([0x13])

    def test_chaos_harness_without_latch_fires_per_instance(self):
        chaos = ChaosHarnessFactory(rocket_harness_factory(), fail_test=0,
                                    kind="raise")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                chaos().run_differential([0x13])

    def test_chaos_batch_fires_at_exact_ordinal_mid_chunk(self):
        chaos = ChaosHarnessFactory(rocket_harness_factory(), fail_test=5,
                                    kind="raise", label="mid-chunk")
        harness = chaos()
        harness.run_differential_batch([[0x13]] * 4)  # ordinals 0-3: clean
        with pytest.raises(InjectedFault, match="test 5"):
            harness.run_differential_batch([[0x13]] * 4)  # 4-7: fires at 5

    def test_chaos_batch_keeps_lanes_batched_off_fault_chunk(self):
        """Chunks without the fault ordinal must delegate to the inner
        batched engines (dut_lanes/golden_lanes stay vectorised)."""
        chaos = ChaosHarnessFactory(
            rocket_harness_factory(golden_lanes=4, dut_lanes=4),
            fail_test=4, kind="raise", label="lanes-on")
        harness = chaos()
        calls = []
        inner_batched = harness._inner.run_differential_batch

        def spying(bodies, *args, **kwargs):
            calls.append(len(bodies))
            return inner_batched(bodies, *args, **kwargs)

        harness._inner.run_differential_batch = spying
        clean = harness.run_differential_batch([[0x13]] * 4)  # 0-3: clean
        assert calls == [4], "fault-free chunk must stay one batched call"
        scalar = rocket_harness_factory()().run_differential_batch([[0x13]])
        assert clean[0][0] == scalar[0][0]  # proxy returns real results
        with pytest.raises(InjectedFault):
            harness.run_differential_batch([[0x13]] * 4)  # 4-7: per body
        assert calls == [4], "fault chunk must not reach the batched path"

    def test_chaos_batch_ordinals_advance_on_delegated_chunks(self):
        chaos = ChaosHarnessFactory(rocket_harness_factory(dut_lanes=2),
                                    fail_test=2, kind="raise",
                                    label="advance")
        harness = chaos()
        harness.run_differential_batch([[0x13]] * 2)  # 0-1 delegated
        assert harness._runs == 2
        with pytest.raises(InjectedFault, match="test 2"):
            harness.run_differential_batch([[0x13]] * 2)


class TestHealthRecord:
    def test_state_dict_round_trip(self):
        health = FleetHealth(retries=3, timeouts=1, pool_rebuilds=2,
                             quarantined=[QuarantinedArm(
                                 1, "bad", "InjectedFault: x", 2, 8)],
                             dropped_snapshots=["arm 0: snapshot dropped"])
        clone = FleetHealth.from_state_dict(
            json.loads(json.dumps(health.state_dict()))
        )
        assert clone == health
        assert not clone.healthy
        assert clone.quarantined_arms() == {1}
        assert "quarantined 'bad'" in clone.summary()

    def test_healthy_default(self):
        health = FleetHealth()
        assert health.healthy
        assert health.summary() == "health: ok"
        assert FleetHealth.from_state_dict(health.state_dict()) == health


class TestInProcessRetryParity:
    """An injected retryable failure must leave no trace in the result."""

    def test_streaming_retry_matches_fault_free(self):
        base = FleetRunner(spec_pair(), n_workers=0).run_scheduled(
            RoundRobin(), slice_tests=8, mode="streaming")
        plan = FaultPlan([FaultPoint(0, 1, 0, kind="raise")])
        runner = FleetRunner(spec_pair(), n_workers=0, fault_plan=plan,
                             retry_backoff=0.0)
        faulted = runner.run_scheduled(RoundRobin(), slice_tests=8,
                                       mode="streaming")
        assert faulted.health.retries == 1
        assert faulted.health.quarantined == []
        assert_campaigns_equal(base, faulted)
        assert runner.last_stats.health is faulted.health

    def test_rounds_retry_matches_fault_free(self):
        base = FleetRunner(spec_pair(), n_workers=0).run_scheduled(
            RoundRobin(), slice_tests=8, mode="rounds")
        plan = FaultPlan([FaultPoint(1, 0, 0, kind="raise"),
                          FaultPoint(0, 2, 0, kind="raise")])
        faulted = FleetRunner(spec_pair(), n_workers=0, fault_plan=plan,
                              retry_backoff=0.0).run_scheduled(
            RoundRobin(), slice_tests=8, mode="rounds")
        assert faulted.health.retries == 2
        assert_campaigns_equal(base, faulted)

    def test_whole_budget_retry_matches_fault_free(self):
        base = FleetRunner(spec_pair(), n_workers=0).run()
        plan = FaultPlan([FaultPoint(0, 0, 0, kind="raise")])
        faulted = FleetRunner(spec_pair(), n_workers=0, fault_plan=plan,
                              retry_backoff=0.0).run()
        assert faulted.health.retries == 1
        assert_campaigns_equal(base, faulted)

    def test_second_attempt_fault_consumes_two_retries(self):
        base = FleetRunner(spec_pair(), n_workers=0).run_scheduled(
            RoundRobin(), slice_tests=8, mode="streaming")
        plan = FaultPlan([FaultPoint(0, 1, 0, kind="raise"),
                          FaultPoint(0, 1, 1, kind="raise")])
        faulted = FleetRunner(spec_pair(), n_workers=0, fault_plan=plan,
                              max_retries=2, retry_backoff=0.0).run_scheduled(
            RoundRobin(), slice_tests=8, mode="streaming")
        assert faulted.health.retries == 2
        assert_campaigns_equal(base, faulted)

    def test_fault_free_path_identical_with_retries_disabled(self):
        """Fault-tolerance bookkeeping must not perturb clean runs."""
        default = FleetRunner(spec_pair(), n_workers=0).run_scheduled(
            RoundRobin(), slice_tests=8, mode="streaming")
        fail_fast = FleetRunner(spec_pair(), n_workers=0, max_retries=0,
                                quarantine=False).run_scheduled(
            RoundRobin(), slice_tests=8, mode="streaming")
        assert default.health.healthy and fail_fast.health.healthy
        assert_campaigns_equal(default, fail_fast)


class TestQuarantine:
    """ISSUE acceptance: an always-failing arm is quarantined after
    ``max_retries`` and the fleet completes with the rest at budget."""

    def _specs(self):
        return spec_pair() + [faulty_spec(label="bad-arm")]

    def test_rounds_quarantines_and_completes(self):
        result = FleetRunner(self._specs(), n_workers=0, max_retries=2,
                             retry_backoff=0.0).run_scheduled(
            RoundRobin(), slice_tests=8, mode="rounds")
        assert result.campaigns[0].tests_run == 24
        assert result.campaigns[1].tests_run == 24
        assert result.campaigns[2].tests_run == 0
        [record] = result.health.quarantined
        assert record.arm == 2 and record.name == "bad-arm"
        assert record.retries == 2
        assert "InjectedFault" in record.error
        assert result.health.retries == 2
        assert "quarantined" in result.summary()

    def test_streaming_quarantines_and_completes(self):
        result = FleetRunner(self._specs(), n_workers=0, max_retries=1,
                             retry_backoff=0.0).run_scheduled(
            RoundRobin(), slice_tests=8, mode="streaming")
        assert result.campaigns[0].tests_run == 24
        assert result.campaigns[1].tests_run == 24
        [record] = result.health.quarantined
        assert record.arm == 2 and record.retries == 1

    def test_whole_budget_quarantines_and_completes(self):
        result = FleetRunner(self._specs(), n_workers=0, max_retries=0,
                             retry_backoff=0.0).run()
        assert result.campaigns[0].tests_run == 24
        assert result.campaigns[1].tests_run == 24
        [record] = result.health.quarantined
        assert record.arm == 2 and record.retries == 0

    def test_quarantine_false_restores_fail_fast(self):
        runner = FleetRunner(self._specs(), n_workers=0, max_retries=1,
                             retry_backoff=0.0, quarantine=False)
        with pytest.raises(InjectedFault):
            runner.run_scheduled(RoundRobin(), slice_tests=8, mode="rounds")

    def test_scheduler_hears_quarantine(self):
        heard: list[int] = []

        class Recording(RoundRobin):
            def on_arm_quarantined(self, arm: int) -> None:
                heard.append(arm)

        FleetRunner(self._specs(), n_workers=0, max_retries=0,
                    retry_backoff=0.0).run_scheduled(
            Recording(), slice_tests=8, mode="streaming")
        assert heard == [2]

    def test_all_arms_quarantined_still_returns(self):
        specs = [faulty_spec(label="bad-a"),
                 faulty_spec(label="bad-b")]
        # Distinct seeds keep the names unique constraint happy.
        result = FleetRunner(specs, n_workers=0, max_retries=0,
                             retry_backoff=0.0).run_scheduled(
            RoundRobin(), slice_tests=8, mode="rounds")
        assert len(result.health.quarantined) == 2
        assert all(c.tests_run == 0 for c in result.campaigns)

    def test_crash_kind_is_never_quarantined(self):
        """BaseException faults abort the fleet even with quarantine on."""
        plan = FaultPlan([FaultPoint(0, 0, 0, kind="crash")])
        runner = FleetRunner(spec_pair(), n_workers=0, fault_plan=plan,
                             retry_backoff=0.0)
        with pytest.raises(InjectedCrash):
            runner.run_scheduled(RoundRobin(), slice_tests=8,
                                 mode="streaming")


class TestInProcessTimeout:
    def test_hang_trips_post_hoc_timeout_then_parity(self):
        base = FleetRunner(spec_pair(), n_workers=0).run_scheduled(
            RoundRobin(), slice_tests=8, mode="streaming")
        plan = FaultPlan([FaultPoint(1, 0, 0, kind="hang",
                                     hang_seconds=0.6)])
        faulted = FleetRunner(spec_pair(), n_workers=0, fault_plan=plan,
                              slice_timeout=0.25,
                              retry_backoff=0.0).run_scheduled(
            RoundRobin(), slice_tests=8, mode="streaming")
        assert faulted.health.timeouts == 1
        assert faulted.health.retries == 1
        assert_campaigns_equal(base, faulted)

    def test_timeout_exhausting_retries_quarantines(self):
        plan = FaultPlan([FaultPoint(1, 0, attempt, kind="hang",
                                     hang_seconds=0.6)
                          for attempt in range(2)])
        result = FleetRunner(spec_pair(), n_workers=0, fault_plan=plan,
                             slice_timeout=0.25, max_retries=1,
                             retry_backoff=0.0).run_scheduled(
            RoundRobin(), slice_tests=8, mode="streaming")
        [record] = result.health.quarantined
        assert record.arm == 1
        assert "SliceTimeout" in record.error
        assert result.campaigns[0].tests_run == 24

    def test_slice_timeout_validation(self):
        with pytest.raises(ValueError, match="slice_timeout"):
            FleetRunner(spec_pair(), n_workers=0, slice_timeout=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            FleetRunner(spec_pair(), n_workers=0, max_retries=-1)


class TestPooledFaults:
    """Worker-death and hang recovery on a real process pool."""

    def test_worker_death_self_heals_streaming(self):
        """ISSUE acceptance: injected worker death mid-fleet no longer
        aborts the run — the slice requeues on a rebuilt pool and the
        result is bit-identical to the fault-free run."""
        with FleetRunner(spec_pair(), n_workers=2) as runner:
            base = runner.run_scheduled(RoundRobin(), slice_tests=8,
                                        mode="streaming")
        plan = FaultPlan([FaultPoint(0, 1, 0, kind="die")])
        with FleetRunner(spec_pair(), n_workers=2, fault_plan=plan,
                         retry_backoff=0.0) as runner:
            faulted = runner.run_scheduled(RoundRobin(), slice_tests=8,
                                           mode="streaming")
        assert faulted.health.pool_rebuilds >= 1
        assert faulted.health.retries >= 1
        assert faulted.health.quarantined == []
        assert_campaigns_equal(base, faulted)

    def test_worker_death_self_heals_rounds(self):
        with FleetRunner(spec_pair(), n_workers=2) as runner:
            base = runner.run_scheduled(RoundRobin(), slice_tests=8,
                                        mode="rounds")
        plan = FaultPlan([FaultPoint(1, 0, 0, kind="die")])
        with FleetRunner(spec_pair(), n_workers=2, fault_plan=plan,
                         retry_backoff=0.0) as runner:
            faulted = runner.run_scheduled(RoundRobin(), slice_tests=8,
                                           mode="rounds")
        assert faulted.health.pool_rebuilds >= 1
        assert_campaigns_equal(base, faulted)

    def test_worker_death_self_heals_whole_budget(self):
        with FleetRunner(spec_pair(), n_workers=2) as runner:
            base = runner.run()
        plan = FaultPlan([FaultPoint(0, 0, 0, kind="die")])
        with FleetRunner(spec_pair(), n_workers=2, fault_plan=plan,
                         retry_backoff=0.0) as runner:
            faulted = runner.run()
        assert faulted.health.pool_rebuilds >= 1
        assert_campaigns_equal(base, faulted)

    def test_hung_worker_recycled_by_slice_timeout(self):
        import time as _time

        with FleetRunner(spec_pair(), n_workers=2) as runner:
            base = runner.run_scheduled(RoundRobin(), slice_tests=8,
                                        mode="streaming")
        plan = FaultPlan([FaultPoint(0, 1, 0, kind="hang",
                                     hang_seconds=60.0)])
        started = _time.monotonic()
        with FleetRunner(spec_pair(), n_workers=2, fault_plan=plan,
                         slice_timeout=2.0, retry_backoff=0.0) as runner:
            faulted = runner.run_scheduled(RoundRobin(), slice_tests=8,
                                           mode="streaming")
        elapsed = _time.monotonic() - started
        assert elapsed < 40.0  # the 60s hang did not hold the fleet
        assert faulted.health.timeouts >= 1
        assert faulted.health.pool_rebuilds >= 1
        assert_campaigns_equal(base, faulted)

    def test_close_is_safe_after_worker_death(self):
        """Satellite: FleetRunner.close() after BrokenProcessPool."""
        plan = FaultPlan([FaultPoint(0, 0, 0, kind="die")])
        runner = FleetRunner(spec_pair(), n_workers=2, fault_plan=plan,
                             max_retries=0, quarantine=False)
        with pytest.raises(Exception):
            runner.run()
        runner.close()  # must not raise on the broken pool
        runner.close()  # and stays idempotent


class TestShardedExecutorHealing:
    """Satellite: ShardedExecutor survives die-mid-chunk and closes safely."""

    BODIES = [[0x13 + (i << 20)] for i in range(16)]

    def test_die_mid_chunk_heals_with_parity(self, tmp_path):
        serial = ShardedExecutor(rocket_harness_factory(),
                                 n_workers=2).run_batch(self.BODIES)
        chaos = ChaosHarnessFactory(rocket_harness_factory(), fail_test=3,
                                    kind="die", once_dir=str(tmp_path),
                                    label="heal-parity")
        executor = ShardedExecutor(chaos, n_workers=2, max_retries=1)
        try:
            healed = executor.run_batch(self.BODIES)
        finally:
            executor.close()
        assert executor.stats.rebuilds == 1
        assert len(healed) == len(serial)
        for clean, after in zip(serial, healed):
            assert clean.report.hits.to_int() == after.report.hits.to_int()
            assert clean.dut_trace == after.dut_trace

    def test_max_retries_zero_fails_fast_and_close_is_safe(self, tmp_path):
        from concurrent.futures.process import BrokenProcessPool

        chaos = ChaosHarnessFactory(rocket_harness_factory(), fail_test=3,
                                    kind="die", once_dir=str(tmp_path),
                                    label="fail-fast")
        executor = ShardedExecutor(chaos, n_workers=2, max_retries=0)
        with pytest.raises(BrokenProcessPool):
            executor.run_batch(self.BODIES)
        executor.close()  # broken pool must be discarded, not re-raised
        executor.close()

    def test_fuzz_loop_close_safe_after_worker_death(self, tmp_path):
        """FuzzLoop.close() routes through executor.close() unharmed."""
        from concurrent.futures.process import BrokenProcessPool

        from repro.baselines.thehuzz import TheHuzzGenerator

        chaos = ChaosHarnessFactory(rocket_harness_factory(), fail_test=0,
                                    kind="die", once_dir=str(tmp_path),
                                    label="loop-close")
        loop = FuzzLoop(TheHuzzGenerator(body_instructions=16, seed=5),
                        chaos, batch_size=8,
                        executor=ShardedExecutor(n_workers=2, max_retries=0))
        with pytest.raises(BrokenProcessPool):
            loop.run_batch()
        loop.close()
        loop.close()

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            ShardedExecutor(rocket_harness_factory(), n_workers=1,
                            max_retries=-1)


class TestCrashResumeEquality:
    """ISSUE acceptance: kill mid-fleet by injected fault, resume, and the
    per-campaign results are bit-identical to an uninterrupted run —
    rounds and streaming, in-process and pooled."""

    def _baseline(self, n_workers, mode):
        with FleetRunner(spec_pair(), n_workers=n_workers) as runner:
            return runner.run_scheduled(RoundRobin(), slice_tests=8,
                                        mode=mode)

    @pytest.mark.parametrize("mode", ["rounds", "streaming"])
    def test_in_process_crash_then_resume(self, tmp_path, mode):
        base = self._baseline(0, mode)
        plan = FaultPlan([FaultPoint(1, 1, 0, kind="crash")])
        killed = FleetRunner(spec_pair(), n_workers=0,
                             checkpoint_dir=tmp_path, fault_plan=plan,
                             retry_backoff=0.0)
        with pytest.raises(InjectedCrash):
            killed.run_scheduled(RoundRobin(), slice_tests=8, mode=mode)
        resumed = FleetRunner(spec_pair(), n_workers=0,
                              checkpoint_dir=tmp_path).run_scheduled(
            RoundRobin(), slice_tests=8, mode=mode)
        assert_campaigns_equal(base, resumed)

    @pytest.mark.parametrize("mode", ["rounds", "streaming"])
    def test_pooled_worker_death_then_resume(self, tmp_path, mode):
        base = self._baseline(2, mode)
        plan = FaultPlan([FaultPoint(1, 1, 0, kind="die")])
        killed = FleetRunner(spec_pair(), n_workers=2,
                             checkpoint_dir=tmp_path, fault_plan=plan,
                             max_retries=0, quarantine=False)
        try:
            with pytest.raises(Exception):
                killed.run_scheduled(RoundRobin(), slice_tests=8, mode=mode)
        finally:
            killed.close()
        with FleetRunner(spec_pair(), n_workers=2,
                         checkpoint_dir=tmp_path) as runner:
            resumed = runner.run_scheduled(RoundRobin(), slice_tests=8,
                                           mode=mode)
        assert_campaigns_equal(base, resumed)


class TestCheckpointHealthRoundTrip:
    """ISSUE acceptance: checkpoints round-trip retry/quarantine state —
    no re-running completed slices, no resurrecting quarantined arms."""

    def _specs(self):
        return spec_pair() + [faulty_spec(label="bad-arm")]

    def test_quarantine_survives_resume(self, tmp_path):
        first = FleetRunner(self._specs(), n_workers=0, max_retries=1,
                            retry_backoff=0.0, checkpoint_dir=tmp_path,
                            ).run_scheduled(RoundRobin(), slice_tests=8,
                                            mode="streaming")
        [record] = first.health.quarantined
        assert record.arm == 2
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["health"]["quarantined"][0]["arm"] == 2

        # The resumed fleet must not rebuild (i.e. retry) the bad arm:
        # its harness factory counts builds per process, and the first
        # run already consumed attempts 0 and 1 in this process.
        from repro.fuzzing.faults import _BUILD_COUNTS

        builds_before = _BUILD_COUNTS.get("bad-arm", 0)
        resumed = FleetRunner(self._specs(), n_workers=0, max_retries=1,
                              retry_backoff=0.0, checkpoint_dir=tmp_path,
                              ).run_scheduled(RoundRobin(), slice_tests=8,
                                              mode="streaming")
        assert _BUILD_COUNTS.get("bad-arm", 0) == builds_before
        [persisted] = resumed.health.quarantined
        assert persisted == record
        assert resumed.campaigns[0].tests_run == 24
        assert resumed.campaigns[1].tests_run == 24

    def test_completed_slices_not_rerun_on_resume(self, tmp_path):
        done = FleetRunner(spec_pair(), n_workers=0,
                           checkpoint_dir=tmp_path).run_scheduled(
            RoundRobin(), slice_tests=8, mode="streaming")
        again = FleetRunner(spec_pair(), n_workers=0,
                            checkpoint_dir=tmp_path)
        resumed = again.run_scheduled(RoundRobin(), slice_tests=8,
                                      mode="streaming")
        assert again.last_stats.slices == 0  # nothing re-ran
        assert_campaigns_equal(done, resumed)

    def test_whole_budget_skips_quarantined_arm(self, tmp_path):
        FleetRunner(self._specs(), n_workers=0, max_retries=0,
                    retry_backoff=0.0, checkpoint_dir=tmp_path).run()
        runner = FleetRunner(self._specs(), n_workers=0, max_retries=0,
                             retry_backoff=0.0, checkpoint_dir=tmp_path)
        from repro.fuzzing.faults import _BUILD_COUNTS

        builds_before = _BUILD_COUNTS.get("bad-arm", 0)
        result = runner.run()
        assert _BUILD_COUNTS.get("bad-arm", 0) == builds_before
        assert len(result.health.quarantined) == 1


class TestTornWriteRecovery:
    """Satellite: checkpoint_recover resumes past torn snapshots."""

    def _checkpointed_run(self, tmp_path):
        return FleetRunner(spec_pair(), n_workers=0,
                           checkpoint_dir=tmp_path).run_scheduled(
            RoundRobin(), slice_tests=8, mode="streaming")

    def test_stale_manifest_recovers_newer_intact_snapshot(self, tmp_path):
        """Kill between arm writes and the manifest write: the arm files
        are intact but ahead — recovery resumes from them."""
        self._checkpointed_run(tmp_path)
        manifest_path = tmp_path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["arms"]["0"]["tests_run"] -= 8  # manifest one slice behind
        manifest_path.write_text(json.dumps(manifest))

        with pytest.raises(ValueError, match="torn checkpoint"):
            FleetRunner(spec_pair(), n_workers=0, checkpoint_dir=tmp_path)\
                .run_scheduled(RoundRobin(), slice_tests=8, mode="streaming")

        runner = FleetRunner(spec_pair(), n_workers=0,
                             checkpoint_dir=tmp_path,
                             checkpoint_recover=True)
        result = runner.run_scheduled(RoundRobin(), slice_tests=8,
                                      mode="streaming")
        [note] = result.health.dropped_snapshots
        assert "intact snapshot" in note
        assert runner.last_stats.slices == 0  # nothing was re-run
        assert result.campaigns[0].tests_run == 24

    def test_torn_arm_files_drop_the_arm_and_restart_it(self, tmp_path):
        """Kill mid-arm-write: no intact snapshot exists — the arm is
        dropped, reported, and re-run from scratch to the same result."""
        base = self._checkpointed_run(tmp_path)
        json_path = tmp_path / "campaign_0.json"
        document = json.loads(json_path.read_text())
        document["tests_run"] += 8  # now disagrees with .pkl stamp
        json_path.write_text(json.dumps(document))

        runner = FleetRunner(spec_pair(), n_workers=0,
                             checkpoint_dir=tmp_path,
                             checkpoint_recover=True)
        result = runner.run_scheduled(RoundRobin(), slice_tests=8,
                                      mode="streaming")
        [note] = result.health.dropped_snapshots
        assert "snapshot dropped" in note
        assert runner.last_stats.slices > 0  # arm 0 really re-ran
        assert_campaigns_equal(base, result)

    def test_strict_mode_unchanged_by_default(self, tmp_path):
        self._checkpointed_run(tmp_path)
        json_path = tmp_path / "campaign_0.json"
        document = json.loads(json_path.read_text())
        document["tests_run"] += 8
        json_path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="torn checkpoint"):
            FleetRunner(spec_pair(), n_workers=0,
                        checkpoint_dir=tmp_path).run_scheduled(
                RoundRobin(), slice_tests=8, mode="streaming")
