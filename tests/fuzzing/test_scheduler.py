"""Budget schedulers: round-robin cycling, UCB1 math, checkpoint state,
and the event-driven interface (next_campaign/on_slice_complete) with its
round-mode adapters (select/update)."""

import math

import pytest

from repro.fuzzing.scheduler import BanditScheduler, BudgetScheduler, RoundRobin


class TestRoundRobin:
    def test_cycles_in_index_order(self):
        rr = RoundRobin()
        rr.bind(3)
        picks = [rr.select([0, 1, 2]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_ineligible_arms(self):
        rr = RoundRobin()
        rr.bind(4)
        assert rr.select([0, 1, 2, 3]) == 0
        # Arm 1 exhausted its budget: the cursor passes over it.
        assert rr.select([0, 2, 3]) == 2
        assert rr.select([0, 2, 3]) == 3
        assert rr.select([0, 2, 3]) == 0

    def test_empty_eligible_raises(self):
        rr = RoundRobin()
        rr.bind(2)
        with pytest.raises(ValueError, match="no eligible"):
            rr.select([])

    def test_state_roundtrip_continues_sequence(self):
        rr = RoundRobin()
        rr.bind(3)
        rr.select([0, 1, 2])
        clone = RoundRobin()
        clone.bind(3)
        clone.load_state_dict(rr.state_dict())
        assert clone.select([0, 1, 2]) == rr.select([0, 1, 2])


class TestBanditScheduler:
    def make(self, rewards, exploration=1.0):
        """A bound bandit that has already observed one pull per arm."""
        bandit = BanditScheduler(exploration=exploration)
        bandit.bind(len(rewards))
        for arm, reward in enumerate(rewards):
            bandit.update(arm, tests=1, reward=reward)
        return bandit

    def test_plays_every_arm_once_first(self):
        bandit = BanditScheduler()
        bandit.bind(3)
        picks = []
        for _ in range(3):
            arm = bandit.select([0, 1, 2])
            picks.append(arm)
            bandit.update(arm, tests=1, reward=0.0)
        assert picks == [0, 1, 2]

    def test_exploits_the_best_arm(self):
        bandit = self.make([0.1, 0.9, 0.1], exploration=0.1)
        assert bandit.select([0, 1, 2]) == 1

    def test_ucb_formula(self):
        bandit = self.make([0.2, 0.8])
        plays = sum(bandit.counts)
        scores = [
            bandit.totals[a] / bandit.counts[a]
            + math.sqrt(2 * math.log(plays) / bandit.counts[a])
            for a in (0, 1)
        ]
        assert bandit.select([0, 1]) == scores.index(max(scores))

    def test_exploration_term_revisits_starved_arms(self):
        # Arm 0 looks best but has been pulled many times; with a large
        # exploration constant the confidence bound sends us back to arm 1.
        bandit = self.make([0.5, 0.4], exploration=5.0)
        for _ in range(20):
            bandit.update(0, tests=1, reward=0.5)
        assert bandit.select([0, 1]) == 1

    def test_tie_breaks_to_lowest_index(self):
        bandit = self.make([0.3, 0.3, 0.3])
        assert bandit.select([0, 1, 2]) == 0
        assert bandit.select([1, 2]) == 1

    def test_respects_eligibility(self):
        bandit = self.make([0.1, 0.9, 0.5], exploration=0.1)
        assert bandit.select([0, 2]) == 2

    def test_state_roundtrip(self):
        bandit = self.make([0.2, 0.7])
        clone = BanditScheduler()
        clone.bind(2)
        clone.load_state_dict(bandit.state_dict())
        assert clone.counts == bandit.counts
        assert clone.totals == bandit.totals
        assert clone.select([0, 1]) == bandit.select([0, 1])

    def test_state_dict_is_json_compatible(self):
        import json

        bandit = self.make([0.2, 0.7])
        assert json.loads(json.dumps(bandit.state_dict())) == \
            bandit.state_dict()

    def test_bind_validates(self):
        with pytest.raises(ValueError):
            BanditScheduler().bind(0)

    def test_base_protocol_defaults(self):
        scheduler = BudgetScheduler()
        scheduler.bind(2)
        scheduler.update(0, tests=1, reward=0.5)  # no-op
        scheduler.load_state_dict(scheduler.state_dict())
        with pytest.raises(NotImplementedError):
            scheduler.select([0, 1])


class TestEventDrivenInterface:
    """The streaming fleet drives next_campaign/on_slice_complete; the
    round-mode pair must be pure adapters over the same policy state."""

    def test_round_robin_event_driven_cycling(self):
        rr = RoundRobin()
        rr.bind(3)
        picks = [rr.next_campaign([0, 1, 2]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_select_and_next_campaign_share_cursor(self):
        rr = RoundRobin()
        rr.bind(4)
        assert rr.next_campaign([0, 1, 2, 3]) == 0
        assert rr.select([0, 1, 2, 3]) == 1  # adapter advances same cursor
        assert rr.next_campaign([0, 1, 2, 3]) == 2

    def test_update_and_on_slice_complete_share_bandit_state(self):
        via_update = BanditScheduler()
        via_update.bind(3)
        via_event = BanditScheduler()
        via_event.bind(3)
        for arm, reward in ((0, 0.1), (1, 0.9), (2, 0.3), (1, 0.8)):
            via_update.update(arm, tests=8, reward=reward)
            via_event.on_slice_complete(arm, tests=8, reward=reward)
        assert via_update.counts == via_event.counts
        assert via_update.totals == via_event.totals
        assert (via_update.select([0, 1, 2])
                == via_event.next_campaign([0, 1, 2]))

    def test_ucb1_state_roundtrip_through_event_interface(self):
        """Satellite pin: UCB1 state survives a checkpoint round-trip when
        driven purely through the event-driven interface."""
        bandit = BanditScheduler(exploration=0.3)
        bandit.bind(3)
        rewards = iter([0.4, 0.9, 0.1, 0.7, 0.2, 0.6])
        for _ in range(3):  # one initial play per arm, then exploitation
            arm = bandit.next_campaign([0, 1, 2])
            bandit.on_slice_complete(arm, tests=8, reward=next(rewards))
        clone = BanditScheduler(exploration=0.3)
        clone.bind(3)
        clone.load_state_dict(bandit.state_dict())
        for _ in range(3):
            reward = next(rewards)
            arm = bandit.next_campaign([0, 1, 2])
            clone_arm = clone.next_campaign([0, 1, 2])
            assert clone_arm == arm
            bandit.on_slice_complete(arm, tests=8, reward=reward)
            clone.on_slice_complete(clone_arm, tests=8, reward=reward)
        assert clone.state_dict() == bandit.state_dict()

    def test_legacy_subclass_still_works_in_round_mode(self):
        """A pre-streaming policy that only overrides select/update keeps
        serving round-mode fleets (and is rejected by streaming, which
        needs next_campaign)."""

        class Legacy(BudgetScheduler):
            def __init__(self):
                self.seen = []

            def select(self, eligible):
                return max(eligible)

            def update(self, arm, tests, reward):
                self.seen.append((arm, reward))

        legacy = Legacy()
        legacy.bind(3)
        assert legacy.select([0, 1, 2]) == 2
        legacy.update(2, tests=8, reward=0.5)
        assert legacy.seen == [(2, 0.5)]
        with pytest.raises(NotImplementedError):
            legacy.next_campaign([0, 1, 2])

    def test_base_on_slice_complete_is_noop(self):
        scheduler = BudgetScheduler()
        scheduler.bind(2)
        scheduler.on_slice_complete(0, tests=8, reward=0.5)
        with pytest.raises(NotImplementedError):
            scheduler.next_campaign([0, 1])
