"""Budget schedulers: round-robin cycling, UCB1 math, checkpoint state."""

import math

import pytest

from repro.fuzzing.scheduler import BanditScheduler, BudgetScheduler, RoundRobin


class TestRoundRobin:
    def test_cycles_in_index_order(self):
        rr = RoundRobin()
        rr.bind(3)
        picks = [rr.select([0, 1, 2]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_ineligible_arms(self):
        rr = RoundRobin()
        rr.bind(4)
        assert rr.select([0, 1, 2, 3]) == 0
        # Arm 1 exhausted its budget: the cursor passes over it.
        assert rr.select([0, 2, 3]) == 2
        assert rr.select([0, 2, 3]) == 3
        assert rr.select([0, 2, 3]) == 0

    def test_empty_eligible_raises(self):
        rr = RoundRobin()
        rr.bind(2)
        with pytest.raises(ValueError, match="no eligible"):
            rr.select([])

    def test_state_roundtrip_continues_sequence(self):
        rr = RoundRobin()
        rr.bind(3)
        rr.select([0, 1, 2])
        clone = RoundRobin()
        clone.bind(3)
        clone.load_state_dict(rr.state_dict())
        assert clone.select([0, 1, 2]) == rr.select([0, 1, 2])


class TestBanditScheduler:
    def make(self, rewards, exploration=1.0):
        """A bound bandit that has already observed one pull per arm."""
        bandit = BanditScheduler(exploration=exploration)
        bandit.bind(len(rewards))
        for arm, reward in enumerate(rewards):
            bandit.update(arm, tests=1, reward=reward)
        return bandit

    def test_plays_every_arm_once_first(self):
        bandit = BanditScheduler()
        bandit.bind(3)
        picks = []
        for _ in range(3):
            arm = bandit.select([0, 1, 2])
            picks.append(arm)
            bandit.update(arm, tests=1, reward=0.0)
        assert picks == [0, 1, 2]

    def test_exploits_the_best_arm(self):
        bandit = self.make([0.1, 0.9, 0.1], exploration=0.1)
        assert bandit.select([0, 1, 2]) == 1

    def test_ucb_formula(self):
        bandit = self.make([0.2, 0.8])
        plays = sum(bandit.counts)
        scores = [
            bandit.totals[a] / bandit.counts[a]
            + math.sqrt(2 * math.log(plays) / bandit.counts[a])
            for a in (0, 1)
        ]
        assert bandit.select([0, 1]) == scores.index(max(scores))

    def test_exploration_term_revisits_starved_arms(self):
        # Arm 0 looks best but has been pulled many times; with a large
        # exploration constant the confidence bound sends us back to arm 1.
        bandit = self.make([0.5, 0.4], exploration=5.0)
        for _ in range(20):
            bandit.update(0, tests=1, reward=0.5)
        assert bandit.select([0, 1]) == 1

    def test_tie_breaks_to_lowest_index(self):
        bandit = self.make([0.3, 0.3, 0.3])
        assert bandit.select([0, 1, 2]) == 0
        assert bandit.select([1, 2]) == 1

    def test_respects_eligibility(self):
        bandit = self.make([0.1, 0.9, 0.5], exploration=0.1)
        assert bandit.select([0, 2]) == 2

    def test_state_roundtrip(self):
        bandit = self.make([0.2, 0.7])
        clone = BanditScheduler()
        clone.bind(2)
        clone.load_state_dict(bandit.state_dict())
        assert clone.counts == bandit.counts
        assert clone.totals == bandit.totals
        assert clone.select([0, 1]) == bandit.select([0, 1])

    def test_state_dict_is_json_compatible(self):
        import json

        bandit = self.make([0.2, 0.7])
        assert json.loads(json.dumps(bandit.state_dict())) == \
            bandit.state_dict()

    def test_bind_validates(self):
        with pytest.raises(ValueError):
            BanditScheduler().bind(0)

    def test_base_protocol_defaults(self):
        scheduler = BudgetScheduler()
        scheduler.bind(2)
        scheduler.update(0, tests=1, reward=0.5)  # no-op
        scheduler.load_state_dict(scheduler.state_dict())
        with pytest.raises(NotImplementedError):
            scheduler.select([0, 1])
