"""Harness executors: serial/sharded parity, ordering, failure modes.

The load-bearing guarantee is that :class:`ShardedExecutor` is externally
indistinguishable from :class:`SerialExecutor` — same results, same order —
so the coverage calculator, mismatch detector and generator feedback see
byte-identical streams (the same way PR 1 pinned cached vs uncached
decoding).
"""

from __future__ import annotations

import multiprocessing
import os

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.baselines.thehuzz import TheHuzzGenerator
from repro.fuzzing import Campaign, FuzzLoop
from repro.fuzzing.executor import (
    DeferredBatch,
    DifferentialResult,
    SerialExecutor,
)
from repro.fuzzing.pool import ShardedExecutor, SubmittedBatch
from repro.golden.trace import CommitTrace
from repro.isa.encoder import encode
from repro.rtl.report import CoverageReport
from repro.soc.harness import make_rocket_harness, rocket_harness_factory

#: Worker-crash style exercised by the failure-mode tests below.
POISON_RAISE = 0xDEAD_BEEF
POISON_EXIT = 0xDEAD_0E1F

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="factory classes defined in a test module need fork to reach workers",
)


def _bodies(n: int, start: int = 1) -> list[list[int]]:
    """Distinct single-instruction bodies (rd value identifies the test)."""
    return [[encode("addi", rd=10, rs1=0, imm=start + i)] for i in range(n)]


class ExplodingHarness:
    """Stand-in harness whose behaviour is selected by the test body."""

    total_arms = 8

    def run_differential(self, body, base=0):
        if body and body[0] == POISON_RAISE:
            raise ValueError("injected harness fault")
        if body and body[0] == POISON_EXIT:
            os._exit(3)
        trace = CommitTrace(stop_reason="wfi")
        report = CoverageReport(hits=frozenset({body[0] % 8} if body else ()),
                                total_arms=self.total_arms)
        return trace, trace, report


def exploding_factory() -> ExplodingHarness:
    return ExplodingHarness()


class TestSerialExecutor:
    def test_accepts_live_harness(self):
        executor = SerialExecutor(make_rocket_harness())
        results = executor.run_batch(_bodies(2))
        assert len(results) == 2
        assert all(isinstance(r, DifferentialResult) for r in results)

    def test_accepts_factory_and_builds_lazily(self):
        executor = SerialExecutor(rocket_harness_factory())
        assert executor._harness is None
        assert executor.total_arms > 0
        assert executor.harness is executor.harness  # built once, reused

    def test_matches_direct_harness_calls(self):
        harness = make_rocket_harness()
        results = SerialExecutor(rocket_harness_factory()).run_batch(_bodies(3))
        for body, res in zip(_bodies(3), results):
            dut, gold, report = harness.run_differential(body)
            assert (res.dut_trace, res.golden_trace, res.report) == \
                (dut, gold, report)

    def test_unbound_raises(self):
        with pytest.raises(RuntimeError, match="not bound"):
            SerialExecutor().run_batch(_bodies(1))


class TestShardedExecutor:
    def test_rejects_live_harness(self):
        with pytest.raises(TypeError, match="factory"):
            ShardedExecutor(make_rocket_harness())
        with pytest.raises(TypeError, match="factory"):
            ShardedExecutor().bind(make_rocket_harness())

    def test_total_arms_matches_serial(self):
        factory = rocket_harness_factory()
        with ShardedExecutor(factory, n_workers=2) as executor:
            assert executor.total_arms == SerialExecutor(factory).total_arms

    def test_results_in_submission_order(self):
        bodies = _bodies(13)
        serial = SerialExecutor(rocket_harness_factory()).run_batch(bodies)
        with ShardedExecutor(rocket_harness_factory(), n_workers=4) as executor:
            sharded = executor.run_batch(bodies)
        assert sharded == serial

    def test_chunking_and_worker_reuse_across_batches(self):
        with ShardedExecutor(rocket_harness_factory(), n_workers=2,
                             chunk_size=1) as executor:
            executor.run_batch(_bodies(5))
            pool = executor._pool
            executor.run_batch(_bodies(3, start=100))
            assert executor._pool is pool  # same processes, no respawn
            assert executor.stats.batches == 2
            assert executor.stats.tests == 8
            assert executor.stats.chunks == 8  # chunk_size=1 -> one per body

    def test_default_chunking_is_one_chunk_per_worker(self):
        with ShardedExecutor(rocket_harness_factory(), n_workers=4) as executor:
            executor.run_batch(_bodies(10))
            assert executor.stats.chunks == 4  # ceil(10/4)=3 -> 3,3,3,1

    def test_default_chunking_never_splits_below_lane_width(self):
        # Even-split would give ceil(64/4)=16-body chunks, starving the
        # 32-lane engines; auto-sizing must widen to max(lanes, even_split).
        executor = ShardedExecutor(
            rocket_harness_factory(golden_lanes=32, dut_lanes=8), n_workers=4)
        chunks = executor._chunks(_bodies(64))
        assert [len(c) for c in chunks] == [32, 32]
        # Larger batches keep the even split once it exceeds the lane width.
        assert [len(c) for c in executor._chunks(_bodies(256))] == [64] * 4
        executor.close()

    def test_explicit_chunk_size_overrides_lane_width(self):
        executor = ShardedExecutor(
            rocket_harness_factory(golden_lanes=32), n_workers=4,
            chunk_size=8)
        assert [len(c) for c in executor._chunks(_bodies(32))] == [8] * 4
        executor.close()

    def test_laneless_factories_keep_plain_even_split(self):
        executor = ShardedExecutor(rocket_harness_factory(), n_workers=4)
        assert [len(c) for c in executor._chunks(_bodies(10))] == [3, 3, 3, 1]
        executor.close()

    def test_empty_batch(self):
        with ShardedExecutor(rocket_harness_factory(), n_workers=2) as executor:
            assert executor.run_batch([]) == []
            assert executor.stats.batches == 0

    def test_close_is_idempotent_and_final(self):
        executor = ShardedExecutor(rocket_harness_factory(), n_workers=2)
        executor.run_batch(_bodies(2))
        executor.close()
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.run_batch(_bodies(1))

    def test_invalid_worker_count(self):
        for bad in (0, -2):
            with pytest.raises(ValueError):
                ShardedExecutor(rocket_harness_factory(), n_workers=bad)


class TestSubmitCollectSplit:
    """The asynchronous submit_batch/collect pair that pipelined loops use.

    Serial executors must *defer* (no work until collect — the synchronous
    degenerate path); the sharded executor must dispatch immediately and
    support several outstanding handles.
    """

    def test_serial_submit_defers_execution(self):
        executor = SerialExecutor(rocket_harness_factory())
        handle = executor.submit_batch(_bodies(3))
        assert isinstance(handle, DeferredBatch)
        assert executor._harness is None  # nothing ran at submit time
        results = executor.collect(handle)
        assert results == SerialExecutor(
            rocket_harness_factory()).run_batch(_bodies(3))

    def test_handles_are_single_use(self):
        executor = SerialExecutor(rocket_harness_factory())
        handle = executor.submit_batch(_bodies(1))
        executor.collect(handle)
        with pytest.raises(RuntimeError, match="already collected"):
            executor.collect(handle)

    def test_foreign_handle_rejected(self):
        executor = SerialExecutor(rocket_harness_factory())
        with pytest.raises(TypeError, match="submit_batch"):
            executor.collect(object())

    def test_sharded_outstanding_handles_collect_in_any_order(self):
        first_bodies, second_bodies = _bodies(5), _bodies(5, start=100)
        serial = SerialExecutor(rocket_harness_factory())
        expected_first = serial.run_batch(first_bodies)
        expected_second = serial.run_batch(second_bodies)
        with ShardedExecutor(rocket_harness_factory(), n_workers=2) as executor:
            first = executor.submit_batch(first_bodies)
            second = executor.submit_batch(second_bodies)
            assert isinstance(first, SubmittedBatch)
            # Collect out of submission order: handles are independent.
            assert executor.collect(second) == expected_second
            assert executor.collect(first) == expected_first
            assert executor.stats.batches == 2
            assert executor.stats.tests == 10

    def test_sharded_run_batch_equals_submit_collect(self):
        bodies = _bodies(7)
        with ShardedExecutor(rocket_harness_factory(), n_workers=2) as executor:
            via_split = executor.collect(executor.submit_batch(bodies))
            via_run = executor.run_batch(bodies)
        assert via_split == via_run

    def test_sharded_double_collect_rejected(self):
        with ShardedExecutor(rocket_harness_factory(), n_workers=2) as executor:
            handle = executor.submit_batch(_bodies(2))
            executor.collect(handle)
            with pytest.raises(RuntimeError, match="already collected"):
                executor.collect(handle)

    def test_empty_submit_collects_to_empty(self):
        with ShardedExecutor(rocket_harness_factory(), n_workers=2) as executor:
            assert executor.collect(executor.submit_batch([])) == []
            assert executor.stats.batches == 0

    def test_collect_after_close_raises_not_hangs(self):
        executor = ShardedExecutor(rocket_harness_factory(), n_workers=2)
        handle = executor.submit_batch(_bodies(4))
        executor.close()  # cancels/drains in-flight chunks, reaps workers
        with pytest.raises(RuntimeError, match="closed"):
            executor.collect(handle)


@fork_only
class TestFailureModes:
    """A worker failing mid-batch must not deadlock or corrupt state."""

    def test_worker_exception_surfaces_and_pool_survives(self):
        bodies = _bodies(6)
        bodies[3] = [POISON_RAISE]
        with ShardedExecutor(exploding_factory, n_workers=2,
                             chunk_size=1) as executor:
            with pytest.raises(ValueError, match="injected harness fault"):
                executor.run_batch(bodies)
            # The pool is still usable for the next batch.
            results = executor.run_batch(_bodies(4))
            assert len(results) == 4

    def test_failed_batch_leaves_loop_state_consistent(self):
        class PoisonOnceGenerator:
            def __init__(self):
                self.calls = 0

            def generate_batch(self, n):
                self.calls += 1
                batch = _bodies(n)
                if self.calls == 1:
                    batch[n // 2] = [POISON_RAISE]
                return batch

        loop = FuzzLoop(PoisonOnceGenerator(), exploding_factory,
                        batch_size=4,
                        executor=ShardedExecutor(n_workers=2, chunk_size=1))
        with loop:
            with pytest.raises(ValueError):
                loop.run_batch()
            assert loop.tests_run == 0
            assert loop.total_percent == 0.0
            assert loop.detector.raw_count == 0
            assert loop.clock.seconds == 0.0
            # The next (clean) batch proceeds normally on the same pool.
            outcome = loop.run_batch()
            assert loop.tests_run == 4
            assert len(outcome.scores) == 4

    def test_worker_death_raises_broken_pool_not_deadlock(self):
        bodies = _bodies(4)
        bodies[1] = [POISON_EXIT]
        executor = ShardedExecutor(exploding_factory, n_workers=2,
                                   chunk_size=1)
        try:
            with pytest.raises(BrokenProcessPool):
                executor.run_batch(bodies)
        finally:
            executor.close()  # must return, not hang, on a broken pool


class TestShardedSerialParity:
    """Acceptance pin: fixed-seed campaign, ShardedExecutor(4) == serial."""

    BATCHES = 4
    BATCH_SIZE = 8

    def _run(self, executor):
        loop = FuzzLoop(
            TheHuzzGenerator(body_instructions=16, seed=5),
            rocket_harness_factory(),
            batch_size=self.BATCH_SIZE,
            executor=executor,
        )
        with loop:
            outcomes = [loop.run_batch() for _ in range(self.BATCHES)]
        return loop, outcomes

    def test_outcome_streams_identical(self):
        serial_loop, serial_out = self._run(None)
        sharded_loop, sharded_out = self._run(ShardedExecutor(n_workers=4))
        for ser, shd in zip(serial_out, sharded_out):
            assert shd.scores == ser.scores
            assert shd.coverages == ser.coverages
            assert shd.mismatch_count == ser.mismatch_count
            assert shd.total_percent == ser.total_percent
            assert [i.words for i in shd.inputs] == [i.words for i in ser.inputs]
        assert sharded_loop.detector.raw_count == serial_loop.detector.raw_count
        assert sharded_loop.detector.by_kind == serial_loop.detector.by_kind
        assert (set(sharded_loop.detector.unique)
                == set(serial_loop.detector.unique))
        assert sharded_loop.total_percent == serial_loop.total_percent

    def test_campaign_curves_identical(self):
        def campaign(executor):
            loop = FuzzLoop(
                TheHuzzGenerator(body_instructions=16, seed=9),
                rocket_harness_factory(),
                batch_size=self.BATCH_SIZE,
                executor=executor,
            )
            with Campaign(loop, "parity") as camp:
                return camp.run_tests(self.BATCHES * self.BATCH_SIZE)

        serial = campaign(None)
        sharded = campaign(ShardedExecutor(n_workers=4))
        assert sharded.curve == serial.curve
        assert sharded.tests_run == serial.tests_run
        assert sharded.sim_hours == serial.sim_hours
        assert sharded.final_coverage_percent == serial.final_coverage_percent
        assert sharded.raw_mismatches == serial.raw_mismatches
        assert sharded.unique_mismatches == serial.unique_mismatches


class TestBatchedGoldenParity:
    """The batched golden engine must be invisible to everything downstream:
    an executor over a ``golden_lanes > 0`` harness produces byte-identical
    result streams to the scalar-golden executor, serially and sharded."""

    def test_serial_executor_routes_batched_golden(self):
        gen = TheHuzzGenerator(body_instructions=20, seed=7)
        bodies = [t.words for t in gen.generate_batch(16)]
        with SerialExecutor(rocket_harness_factory()) as scalar_ex, \
                SerialExecutor(rocket_harness_factory(golden_lanes=8)) as batched_ex:
            assert batched_ex.harness._golden_batch is not None
            scalar_results = scalar_ex.run_batch(bodies)
            batched_results = batched_ex.run_batch(bodies)
        assert len(batched_results) == len(scalar_results)
        for ref, out in zip(scalar_results, batched_results):
            assert out.golden_trace.entries == ref.golden_trace.entries
            assert out.golden_trace.stop_reason == ref.golden_trace.stop_reason
            assert out.dut_trace.entries == ref.dut_trace.entries
            assert out.report.hits == ref.report.hits

    def test_fuzz_loop_outcomes_identical(self):
        def run(golden_lanes):
            loop = FuzzLoop(
                TheHuzzGenerator(body_instructions=16, seed=5),
                rocket_harness_factory(golden_lanes=golden_lanes),
                batch_size=8,
            )
            with loop:
                return [loop.run_batch() for _ in range(3)]

        for ref, out in zip(run(0), run(16)):
            assert out.scores == ref.scores
            assert out.coverages == ref.coverages
            assert out.mismatch_count == ref.mismatch_count
            assert out.total_percent == ref.total_percent

    def test_sharded_chunks_ride_batched_golden(self):
        gen = TheHuzzGenerator(body_instructions=16, seed=3)
        bodies = [t.words for t in gen.generate_batch(16)]
        with SerialExecutor(rocket_harness_factory()) as serial_ex:
            expected = serial_ex.run_batch(bodies)
        with ShardedExecutor(rocket_harness_factory(golden_lanes=8),
                             n_workers=2) as sharded_ex:
            got = sharded_ex.run_batch(bodies)
        for ref, out in zip(expected, got):
            assert out.golden_trace.entries == ref.golden_trace.entries
            assert out.report.hits == ref.report.hits


class TestBatchedDutParity:
    """Same invisibility contract for the batched DUT engine: with
    ``dut_lanes > 0`` (alone or stacked with ``golden_lanes``) the result
    stream — DUT traces *and* coverage reports — is byte-identical."""

    def test_serial_executor_routes_batched_dut(self):
        gen = TheHuzzGenerator(body_instructions=20, seed=7)
        bodies = [t.words for t in gen.generate_batch(16)]
        with SerialExecutor(rocket_harness_factory()) as scalar_ex, \
                SerialExecutor(rocket_harness_factory(dut_lanes=8)) as batched_ex:
            assert batched_ex.harness._dut_batch is not None
            scalar_results = scalar_ex.run_batch(bodies)
            batched_results = batched_ex.run_batch(bodies)
        assert len(batched_results) == len(scalar_results)
        for ref, out in zip(scalar_results, batched_results):
            assert out.dut_trace.entries == ref.dut_trace.entries
            assert out.dut_trace.stop_reason == ref.dut_trace.stop_reason
            assert out.golden_trace.entries == ref.golden_trace.entries
            assert out.report.hits == ref.report.hits
            assert out.report.cycles == ref.report.cycles

    def test_fuzz_loop_outcomes_identical_both_lanes(self):
        def run(golden_lanes, dut_lanes):
            loop = FuzzLoop(
                TheHuzzGenerator(body_instructions=16, seed=5),
                rocket_harness_factory(golden_lanes=golden_lanes,
                                       dut_lanes=dut_lanes),
                batch_size=8,
            )
            with loop:
                return [loop.run_batch() for _ in range(3)]

        for ref, out in zip(run(0, 0), run(16, 16)):
            assert out.scores == ref.scores
            assert out.coverages == ref.coverages
            assert out.mismatch_count == ref.mismatch_count
            assert out.total_percent == ref.total_percent

    def test_sharded_chunks_ride_batched_dut(self):
        gen = TheHuzzGenerator(body_instructions=16, seed=3)
        bodies = [t.words for t in gen.generate_batch(16)]
        with SerialExecutor(rocket_harness_factory()) as serial_ex:
            expected = serial_ex.run_batch(bodies)
        with ShardedExecutor(rocket_harness_factory(golden_lanes=8,
                                                    dut_lanes=8),
                             n_workers=2) as sharded_ex:
            got = sharded_ex.run_batch(bodies)
        for ref, out in zip(expected, got):
            assert out.dut_trace.entries == ref.dut_trace.entries
            assert out.golden_trace.entries == ref.golden_trace.entries
            assert out.report.hits == ref.report.hits
