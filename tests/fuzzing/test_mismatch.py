"""Mismatch detector: every divergence kind, filters, unique dedup."""

from repro.golden.trace import CommitTrace, MemOp, TraceEntry
from repro.fuzzing.mismatch import (
    MismatchDetector,
    compare_traces,
    counter_csr_filter,
)
from repro.isa.encoder import encode


def entry(pc=0x8000_0000, instr=0x13, **kwargs):
    return TraceEntry(pc=pc, instr=instr, priv=3, **kwargs)


def trace_of(*entries, stop="wfi"):
    trace = CommitTrace()
    for e in entries:
        trace.append(e)
    trace.stop_reason = stop
    return trace


class TestCompareKinds:
    def test_identical_traces_clean(self):
        a = trace_of(entry(rd=5, rd_value=7))
        b = trace_of(entry(rd=5, rd_value=7))
        assert compare_traces(a, b) == []

    def test_pc_divergence_stops_comparison(self):
        dut = trace_of(entry(pc=0x100), entry(pc=0x104, rd=1, rd_value=1))
        gold = trace_of(entry(pc=0x200), entry(pc=0x204, rd=1, rd_value=2))
        mismatches = compare_traces(dut, gold)
        assert len(mismatches) == 1
        assert mismatches[0].kind == "pc_divergence"

    def test_instr_word_divergence(self):
        dut = trace_of(entry(instr=0xAAAA))
        gold = trace_of(entry(instr=0xBBBB))
        assert compare_traces(dut, gold)[0].kind == "instr_word"

    def test_trap_cause_mismatch(self):
        dut = trace_of(entry(trap_cause=5))
        gold = trace_of(entry(trap_cause=4))
        found = compare_traces(dut, gold)
        assert found[0].kind == "trap_cause"
        assert found[0].signature[2:] == (5, 4)

    def test_rd_missing(self):
        dut = trace_of(entry())
        gold = trace_of(entry(rd=5, rd_value=9))
        assert compare_traces(dut, gold)[0].kind == "rd_missing"

    def test_rd_spurious_x0(self):
        dut = trace_of(entry(rd=0, rd_value=9))
        gold = trace_of(entry())
        assert compare_traces(dut, gold)[0].kind == "rd_spurious_x0"

    def test_rd_value_mismatch(self):
        dut = trace_of(entry(rd=5, rd_value=1))
        gold = trace_of(entry(rd=5, rd_value=2))
        assert compare_traces(dut, gold)[0].kind == "rd_value"

    def test_rd_target_mismatch(self):
        dut = trace_of(entry(rd=5, rd_value=1))
        gold = trace_of(entry(rd=6, rd_value=1))
        assert compare_traces(dut, gold)[0].kind == "rd_target"

    def test_mem_mismatch(self):
        dut = trace_of(entry(mem=MemOp(0x100, 8, True, 1)))
        gold = trace_of(entry(mem=MemOp(0x100, 8, True, 2)))
        assert compare_traces(dut, gold)[0].kind == "mem"

    def test_csr_mismatch(self):
        dut = trace_of(entry(csr_write=(0x300, 1)))
        gold = trace_of(entry(csr_write=(0x300, 2)))
        assert compare_traces(dut, gold)[0].kind == "csr"

    def test_trace_length_mismatch(self):
        dut = trace_of(entry(), entry(pc=0x8000_0004))
        gold = trace_of(entry())
        assert compare_traces(dut, gold)[-1].kind == "trace_length"

    def test_stop_reason_mismatch(self):
        dut = trace_of(entry(), stop="wfi")
        gold = trace_of(entry(), stop="max_steps")
        assert compare_traces(dut, gold)[-1].kind == "stop_reason"


class TestDetector:
    def test_unique_dedup_by_signature(self):
        detector = MismatchDetector()
        dut = trace_of(entry(rd=5, rd_value=1))
        gold = trace_of(entry(rd=5, rd_value=2))
        for _ in range(10):
            detector.observe(dut, gold)
        assert detector.raw_count == 10
        assert detector.unique_count == 1

    def test_by_kind_histogram(self):
        detector = MismatchDetector()
        detector.observe(trace_of(entry(rd=0, rd_value=9)), trace_of(entry()))
        assert detector.by_kind == {"rd_spurious_x0": 1}

    def test_counter_filter_suppresses_cycle_reads(self):
        csrr_cycle = encode("csrrs", rd=5, csr=0xC00, rs1=0)
        detector = MismatchDetector(filters=[counter_csr_filter])
        dut = trace_of(entry(instr=csrr_cycle, rd=5, rd_value=100))
        gold = trace_of(entry(instr=csrr_cycle, rd=5, rd_value=42))
        surviving = detector.observe(dut, gold)
        assert surviving == []
        assert detector.filtered_count == 1
        assert detector.unique_count == 0

    def test_counter_filter_leaves_other_mismatches(self):
        add = encode("add", rd=5, rs1=1, rs2=2)
        detector = MismatchDetector(filters=[counter_csr_filter])
        dut = trace_of(entry(instr=add, rd=5, rd_value=100))
        gold = trace_of(entry(instr=add, rd=5, rd_value=42))
        assert len(detector.observe(dut, gold)) == 1

    def test_summary_renders(self):
        detector = MismatchDetector()
        detector.observe(trace_of(entry(rd=5, rd_value=1)),
                         trace_of(entry(rd=5, rd_value=2)))
        text = detector.summary()
        assert "raw mismatches:" in text
        assert "unique mismatches:" in text
