"""End-to-end integration: a miniature ChatFuzz campaign finds the paper's
bugs and out-covers the mutation baseline on the same budget."""

import pytest

from repro.analysis.bugs import detected_bugs
from repro.baselines.thehuzz import TheHuzzGenerator
from repro.fuzzing.campaign import Campaign
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.ml.lm_training import LMTrainConfig
from repro.ml.pipeline import ChatFuzzPipeline, PipelineConfig
from repro.ml.transformer import GPT2Config
from repro.soc.harness import make_rocket_harness


@pytest.fixture(scope="module")
def trained_pipeline():
    config = PipelineConfig(
        corpus_functions=150,
        tokenizer_max_vocab=2048,
        model=GPT2Config(dim=48, n_layers=2, n_heads=2, max_seq=80),
        lm=LMTrainConfig(steps=300, batch_size=12, lr=2e-3),
        step2_steps=4,
        step3_steps=2,
        ppo_batch_size=8,
        response_instructions=20,
    )
    pipeline = ChatFuzzPipeline(config)
    pipeline.run_all(make_rocket_harness())
    return pipeline


class TestEndToEnd:
    def test_chatfuzz_campaign_finds_bugs(self, trained_pipeline):
        loop = FuzzLoop(trained_pipeline.make_generator(seed=31),
                        make_rocket_harness(), batch_size=16)
        result = Campaign(loop, "chatfuzz-mini").run_tests(160)
        assert result.raw_mismatches > 0
        assert result.unique_mismatches >= 3
        bugs = detected_bugs(loop.detector.unique.values())
        # Bug2 fires on any mul/div; Bug1 needs an unfenced patch sequence;
        # a mini campaign must find at least these plus one more behaviour.
        assert "BUG2" in bugs
        assert len(bugs) >= 2, bugs

    def test_chatfuzz_beats_thehuzz_at_equal_budget(self, trained_pipeline):
        budget = 160
        chat_loop = FuzzLoop(trained_pipeline.make_generator(seed=33),
                             make_rocket_harness(), batch_size=16)
        chat = Campaign(chat_loop, "chatfuzz").run_tests(budget)
        huzz_loop = FuzzLoop(TheHuzzGenerator(body_instructions=24, seed=5),
                             make_rocket_harness(), batch_size=16)
        huzz = Campaign(huzz_loop, "thehuzz").run_tests(budget)
        assert chat.final_coverage_percent > huzz.final_coverage_percent

    def test_clock_maps_tests_to_paper_time_axis(self, trained_pipeline):
        loop = FuzzLoop(trained_pipeline.make_generator(seed=35),
                        make_rocket_harness(), batch_size=16)
        result = Campaign(loop, "timed").run_tests(32)
        expected_hours = (2360.0 + 32 * 0.4223) / 3600.0
        assert result.sim_hours == pytest.approx(expected_hours, rel=1e-6)
