"""Static function extraction from flat binaries."""

from repro.dataset.codegen import FunctionGenerator, generate_binary
from repro.dataset.extraction import extract_functions
from repro.isa.encoder import encode


class TestExtraction:
    def test_recovers_all_functions(self):
        binary = generate_binary(25, seed=4)
        functions = extract_functions(binary)
        assert len(functions) == 25

    def test_functions_match_generated(self):
        generator = FunctionGenerator(seed=8)
        originals = [generator.function().words for _ in range(5)]
        binary = []
        for words in originals:
            binary += list(words)
            while len(binary) % 4:
                binary.append(0)
        extracted = extract_functions(binary)
        assert [tuple(f) for f in extracted] == [tuple(o) for o in originals]

    def test_padding_not_included(self):
        binary = generate_binary(5, seed=2)
        for function in extract_functions(binary):
            assert 0 not in function

    def test_empty_binary(self):
        assert extract_functions([]) == []

    def test_garbage_only(self):
        assert extract_functions([0, 0xFFFFFFFF, 0]) == []

    def test_function_without_ret_skipped(self):
        prologue = encode("addi", rd=2, rs1=2, imm=-16)
        assert extract_functions([prologue, 0, 0]) == []

    def test_max_len_guard(self):
        prologue = encode("addi", rd=2, rs1=2, imm=-16)
        nop = encode("addi", rd=0, rs1=0, imm=0)
        ret = encode("jalr", rd=0, rs1=1, imm=0)
        binary = [prologue] + [nop] * 600 + [ret]
        assert extract_functions(binary, max_len=512) == []
        assert len(extract_functions(binary, max_len=1024)) == 1
