"""Corpus container: synthesis, statistics, persistence."""

from repro.dataset.corpus import Corpus


class TestSynthesis:
    def test_synthesize_counts(self):
        corpus = Corpus.synthesize(15, seed=6)
        assert len(corpus) == 15
        assert corpus.total_instructions() > 15 * 5

    def test_histogram_has_no_invalid(self):
        corpus = Corpus.synthesize(20, seed=6)
        assert "<invalid>" not in corpus.mnemonic_histogram()

    def test_histogram_reflects_compiled_shape(self):
        histogram = Corpus.synthesize(50, seed=1).mnemonic_histogram()
        # Compiled code is dominated by addi/loads/stores; every function
        # has prologue stores, epilogue loads and a ret (jalr).
        assert histogram["addi"] > histogram.get("mulw", 0)
        assert histogram["sd"] >= 50
        assert histogram["jalr"] >= 50

    def test_split(self):
        corpus = Corpus.synthesize(40, seed=2)
        train, validation = corpus.split(validation_fraction=0.1)
        assert len(train) == 36
        assert len(validation) == 4
        assert train.entries + validation.entries == corpus.entries


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        corpus = Corpus.synthesize(8, seed=3)
        path = tmp_path / "corpus.json"
        corpus.save(path)
        loaded = Corpus.load(path)
        assert loaded.entries == corpus.entries

    def test_indexing_and_iteration(self):
        corpus = Corpus.synthesize(3, seed=5)
        assert list(iter(corpus))[0] == corpus[0]
