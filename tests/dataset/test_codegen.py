"""Synthetic compiler: function shape, snippet validity, determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.codegen import (
    CodegenConfig,
    FunctionGenerator,
    generate_binary,
)
from repro.isa.decoder import decode


class TestFunctionShape:
    def setup_method(self):
        self.generator = FunctionGenerator(seed=42)

    def test_every_word_decodes(self):
        for _ in range(30):
            function = self.generator.function()
            for word in function.words:
                assert decode(word) is not None, hex(word)

    def test_starts_with_stack_alloc(self):
        function = self.generator.function()
        first = decode(function.words[0])
        assert first.mnemonic == "addi"
        assert first.rd == first.rs1 == 2
        assert first.imm < 0

    def test_ends_with_ret(self):
        function = self.generator.function()
        last = decode(function.words[-1])
        assert last.mnemonic == "jalr"
        assert last.rd == 0 and last.rs1 == 1 and last.imm == 0

    def test_epilogue_restores_stack(self):
        function = self.generator.function()
        alloc = decode(function.words[0]).imm
        # The matching positive adjustment appears near the end.
        adjustments = [
            decode(w).imm
            for w in function.words
            if (i := decode(w)) and i.mnemonic == "addi"
            and i.rd == 2 and i.rs1 == 2
        ]
        assert -alloc in adjustments

    def test_unique_names(self):
        names = {self.generator.function().name for _ in range(10)}
        assert len(names) == 10


class TestDeterminism:
    def test_same_seed_same_functions(self):
        a = FunctionGenerator(seed=7)
        b = FunctionGenerator(seed=7)
        for _ in range(5):
            assert a.function().words == b.function().words

    def test_different_seeds_differ(self):
        a = FunctionGenerator(seed=1).function()
        b = FunctionGenerator(seed=2).function()
        assert a.words != b.words


@pytest.mark.parametrize("kind", sorted(FunctionGenerator._SNIPPETS))
def test_each_snippet_emits_valid_code(kind):
    generator = FunctionGenerator(seed=13)
    snippet = FunctionGenerator._SNIPPETS[kind]
    for _ in range(10):
        words = snippet(generator, [])
        assert words, kind
        for word in words:
            assert decode(word) is not None, (kind, hex(word))


class TestSnippetSemantics:
    def test_loop_counted_terminates(self):
        """Loops must be bounded: the backward branch targets the counter
        decrement, and the counter starts positive."""
        generator = FunctionGenerator(seed=3)
        for _ in range(20):
            words = generator._loop_counted([])
            branch = decode(words[-1])
            assert branch.mnemonic == "bne"
            assert branch.imm < 0
            init = decode(words[0])
            assert init.imm > 0

    def test_branch_skip_stays_inside_snippet(self):
        generator = FunctionGenerator(seed=3)
        for _ in range(20):
            words = generator._branch_skip([])
            branch = decode(words[0])
            assert 0 < branch.imm <= 4 * len(words)

    def test_smc_patch_fencei_probability(self):
        always = FunctionGenerator(CodegenConfig(fencei_probability=1.0), seed=5)
        never = FunctionGenerator(CodegenConfig(fencei_probability=0.0), seed=5)
        assert any(decode(w).mnemonic == "fence.i"
                   for w in always._smc_patch([]))
        assert all(decode(w).mnemonic != "fence.i"
                   for w in never._smc_patch([]))


class TestBinary:
    def test_binary_is_function_multiple_padded(self):
        binary = generate_binary(10, seed=1)
        assert len(binary) % 4 == 0

    @given(st.integers(min_value=1, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_binary_deterministic(self, n):
        assert generate_binary(n, seed=3) == generate_binary(n, seed=3)
