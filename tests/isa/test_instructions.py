"""Instruction-database sanity: the table must be unambiguous and complete."""

from repro.isa.instructions import (
    AMOS,
    BRANCHES,
    CSR_OPS,
    DECODE_TABLE,
    INSTRUCTIONS,
    LOADS,
    MULDIVS,
    STORES,
)


class TestTableShape:
    def test_expected_instruction_count(self):
        # RV64I incl. fences/system (55) + M (13) + A (22) + Zicsr (6) == 96.
        assert len(INSTRUCTIONS) == 96

    def test_groups_are_disjoint(self):
        groups = [set(LOADS), set(STORES), set(BRANCHES), set(MULDIVS),
                  set(AMOS), set(CSR_OPS)]
        for i, a in enumerate(groups):
            for b in groups[i + 1:]:
                assert not (a & b)

    def test_group_sizes(self):
        assert len(LOADS) == 7
        assert len(STORES) == 4
        assert len(BRANCHES) == 6
        assert len(MULDIVS) == 13
        assert len(AMOS) == 22
        assert len(CSR_OPS) == 6

    def test_every_spec_has_match_mask(self):
        for spec in INSTRUCTIONS.values():
            assert spec.mask & 0x7F == 0x7F, spec.mnemonic
            assert spec.match & 0x7F == spec.opcode, spec.mnemonic
            assert spec.match & ~spec.mask == 0, spec.mnemonic


class TestUnambiguity:
    def test_no_two_specs_overlap(self):
        """No instruction word may satisfy two different (match, mask) pairs.

        Two patterns overlap iff they agree on every bit where both masks
        are set.
        """
        specs = list(INSTRUCTIONS.values())
        for i, a in enumerate(specs):
            for b in specs[i + 1:]:
                common = a.mask & b.mask
                if a.match & common == b.match & common:
                    # One pattern must be a strict refinement of the other —
                    # and then the decode table must try it first.
                    assert a.mask != b.mask, (a.mnemonic, b.mnemonic)

    def test_decode_table_orders_specific_first(self):
        for opcode, specs in DECODE_TABLE.items():
            bits_set = [bin(s.mask).count("1") for s in specs]
            assert bits_set == sorted(bits_set, reverse=True), hex(opcode)


class TestClassification:
    def test_memory_classification(self):
        assert INSTRUCTIONS["ld"].is_memory
        assert INSTRUCTIONS["sd"].is_memory
        assert INSTRUCTIONS["amoadd.d"].is_memory
        assert not INSTRUCTIONS["add"].is_memory

    def test_control_flow(self):
        assert INSTRUCTIONS["beq"].is_control_flow
        assert INSTRUCTIONS["jal"].is_control_flow
        assert INSTRUCTIONS["jalr"].is_control_flow
        assert not INSTRUCTIONS["lw"].is_control_flow

    def test_writes_rd(self):
        assert INSTRUCTIONS["add"].writes_rd
        assert INSTRUCTIONS["jal"].writes_rd
        assert not INSTRUCTIONS["sd"].writes_rd
        assert not INSTRUCTIONS["beq"].writes_rd
        assert not INSTRUCTIONS["fence"].writes_rd

    def test_lr_has_no_rs2(self):
        assert not INSTRUCTIONS["lr.d"].reads_rs2
        assert INSTRUCTIONS["sc.d"].reads_rs2

    def test_fixed_words(self):
        assert INSTRUCTIONS["ecall"].match == 0x0000_0073
        assert INSTRUCTIONS["ebreak"].match == 0x0010_0073
        assert INSTRUCTIONS["mret"].match == 0x3020_0073
        assert INSTRUCTIONS["wfi"].match == 0x1050_0073
