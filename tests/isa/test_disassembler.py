"""Disassembler: text rendering and the step-2 reward substrate."""

from repro.isa.disassembler import Disassembler
from repro.isa.encoder import encode


class TestFormatting:
    def setup_method(self):
        self.dis = Disassembler()

    def test_r_format(self):
        assert self.dis.disassemble_word(
            encode("add", rd=1, rs1=2, rs2=3)) == "add ra, sp, gp"

    def test_load_store_syntax(self):
        assert self.dis.disassemble_word(
            encode("ld", rd=5, rs1=2, imm=8)) == "ld t0, 8(sp)"
        assert self.dis.disassemble_word(
            encode("sd", rs2=5, rs1=2, imm=-16)) == "sd t0, -16(sp)"

    def test_branch(self):
        assert self.dis.disassemble_word(
            encode("bne", rs1=10, rs2=0, imm=-4)) == "bne a0, zero, -4"

    def test_lui_hex(self):
        assert self.dis.disassemble_word(
            encode("lui", rd=10, imm=0x12345)) == "lui a0, 0x12345000"

    def test_csr_named(self):
        text = self.dis.disassemble_word(encode("csrrw", rd=3, rs1=4, csr=0x300))
        assert text == "csrrw gp, mstatus, tp"

    def test_csr_unnamed_address(self):
        text = self.dis.disassemble_word(encode("csrrw", rd=3, rs1=4, csr=0x123))
        assert "0x123" in text

    def test_amo_with_ordering_bits(self):
        text = self.dis.disassemble_word(
            encode("amoswap.d", rd=5, rs1=6, rs2=7, aq=1, rl=1))
        assert text == "amoswap.d.aq.rl t0, t2, (t1)"

    def test_lr(self):
        assert self.dis.disassemble_word(
            encode("lr.w", rd=5, rs1=6)) == "lr.w t0, (t1)"

    def test_system_no_operands(self):
        assert self.dis.disassemble_word(encode("ecall")) == "ecall"
        assert self.dis.disassemble_word(encode("fence.i")) == "fence.i"

    def test_invalid_word_renders_as_data(self):
        assert self.dis.disassemble_word(0) == ".word 0x00000000"


class TestScoring:
    def setup_method(self):
        self.dis = Disassembler()
        self.valid = [encode("addi", rd=1, rs1=1, imm=1)] * 4

    def test_all_valid(self):
        result = self.dis.disassemble(self.valid)
        assert result.invalid == 0
        assert result.valid == 4
        assert result.validity_rate == 1.0

    def test_counts_invalid(self):
        result = self.dis.disassemble(self.valid + [0, 0xFFFFFFFF])
        assert result.total == 6
        assert result.invalid == 2
        assert abs(result.validity_rate - 4 / 6) < 1e-9

    def test_count_invalid_shortcut(self):
        assert self.dis.count_invalid([0, 1, encode("ecall")]) == 2

    def test_empty_stream(self):
        result = self.dis.disassemble([])
        assert result.validity_rate == 1.0
        assert result.total == 0

    def test_listing_contains_addresses(self):
        listing = self.dis.listing(self.valid, base=0x8000_0000)
        assert "0x80000000" in listing
        assert listing.count("\n") == 3
