"""Two-pass assembler: labels, pseudo-instructions, operand syntax, errors."""

import pytest

from repro.isa.assembler import Assembler, AssemblerError
from repro.isa.decoder import decode
from repro.isa.encoder import encode


class TestBasics:
    def test_single_instruction(self):
        assert Assembler().assemble("add x1, x2, x3") == [
            encode("add", rd=1, rs1=2, rs2=3)
        ]

    def test_abi_names(self):
        assert Assembler().assemble("add ra, sp, gp") == [
            encode("add", rd=1, rs1=2, rs2=3)
        ]

    def test_fp_alias(self):
        assert Assembler().assemble("addi fp, fp, 0") == [
            encode("addi", rd=8, rs1=8, imm=0)
        ]

    def test_comments_and_blanks(self):
        words = Assembler().assemble("""
            # a comment
            nop  # trailing comment

        """)
        assert words == [encode("addi", rd=0, rs1=0, imm=0)]

    def test_memory_operand(self):
        assert Assembler().assemble("ld t0, 8(sp)") == [
            encode("ld", rd=5, rs1=2, imm=8)
        ]

    def test_store_memory_operand(self):
        assert Assembler().assemble("sw a0, -4(s0)") == [
            encode("sw", rs2=10, rs1=8, imm=-4)
        ]

    def test_amo_bare_paren(self):
        assert Assembler().assemble("lr.d t1, (s0)") == [
            encode("lr.d", rd=6, rs1=8)
        ]

    def test_csr_by_name_and_number(self):
        by_name = Assembler().assemble("csrrw x0, mstatus, x1")
        by_addr = Assembler().assemble("csrrw x0, 0x300, x1")
        assert by_name == by_addr

    def test_hex_immediates(self):
        assert Assembler().assemble("addi a0, zero, 0x7f") == [
            encode("addi", rd=10, rs1=0, imm=127)
        ]

    def test_word_directive(self):
        assert Assembler().assemble(".word 0xdeadbeef") == [0xDEADBEEF]


class TestLabels:
    def test_backward_branch(self):
        words = Assembler().assemble("""
        top:
            addi a0, a0, -1
            bne a0, zero, top
        """)
        branch = decode(words[1])
        assert branch.imm == -4

    def test_forward_branch(self):
        words = Assembler().assemble("""
            beq a0, zero, done
            nop
            nop
        done:
            nop
        """)
        assert decode(words[0]).imm == 12

    def test_jal_label(self):
        words = Assembler(base=0x1000).assemble("""
            jal ra, fn
            nop
        fn:
            ret
        """)
        assert decode(words[0]).imm == 8

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            Assembler().assemble("a:\na:\nnop")

    def test_label_on_same_line(self):
        words = Assembler().assemble("loop: j loop")
        assert decode(words[0]).imm == 0


class TestPseudos:
    @pytest.mark.parametrize("text,expected", [
        ("nop", ("addi", dict(rd=0, rs1=0, imm=0))),
        ("mv a0, a1", ("addi", dict(rd=10, rs1=11, imm=0))),
        ("li t0, -5", ("addi", dict(rd=5, rs1=0, imm=-5))),
        ("not a0, a1", ("xori", dict(rd=10, rs1=11, imm=-1))),
        ("neg a0, a1", ("sub", dict(rd=10, rs1=0, rs2=11))),
        ("ret", ("jalr", dict(rd=0, rs1=1, imm=0))),
        ("beqz a0, 8", ("beq", dict(rs1=10, rs2=0, imm=8))),
        ("bnez a0, -8", ("bne", dict(rs1=10, rs2=0, imm=-8))),
        ("csrr t0, mhartid", ("csrrs", dict(rd=5, csr=0xF14, rs1=0))),
        ("csrw mscratch, t0", ("csrrw", dict(rd=0, csr=0x340, rs1=5))),
    ])
    def test_expansion(self, text, expected):
        mnemonic, operands = expected
        assert Assembler().assemble(text) == [encode(mnemonic, **operands)]


class TestErrors:
    @pytest.mark.parametrize("text", [
        "frobnicate x1, x2",
        "add x1, x2",            # missing operand
        "add x1, x2, x3, x4",    # extra operand
        "addi x1, x99, 0",       # bad register
        "addi x1, x2, 99999",    # immediate out of range
        "beq a0, a1, 3",         # odd branch offset
        "ld t0, undefined_label",  # unresolvable label as immediate
    ])
    def test_rejected(self, text):
        with pytest.raises(AssemblerError):
            Assembler().assemble(text)

    def test_error_carries_line_number(self):
        try:
            Assembler().assemble("nop\nbogus x0")
        except AssemblerError as exc:
            assert "line 2" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected AssemblerError")
