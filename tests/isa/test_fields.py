"""Bit-field helpers: slicing, sign extension, immediate pack/unpack."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import fields


class TestBits:
    def test_bits_extracts_slice(self):
        assert fields.bits(0b1101_0110, 7, 4) == 0b1101

    def test_bits_full_width(self):
        assert fields.bits(0xFFFF_FFFF, 31, 0) == 0xFFFF_FFFF

    def test_bits_single(self):
        assert fields.bits(0b100, 2, 2) == 1

    def test_bits_invalid_slice_raises(self):
        with pytest.raises(ValueError):
            fields.bits(0, 3, 5)

    def test_bit(self):
        assert fields.bit(0b1000, 3) == 1
        assert fields.bit(0b1000, 2) == 0


class TestSignExtension:
    def test_positive_unchanged(self):
        assert fields.sign_extend(0x7F, 8) == 127

    def test_negative_wraps(self):
        assert fields.sign_extend(0xFF, 8) == -1
        assert fields.sign_extend(0x80, 8) == -128

    def test_to_unsigned_roundtrip(self):
        assert fields.to_unsigned(-1) == fields.MASK64
        assert fields.to_unsigned(-1, 32) == 0xFFFF_FFFF

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip_64(self, value):
        assert fields.to_signed(fields.to_unsigned(value)) == value

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_unsigned_roundtrip_64(self, value):
        assert fields.to_unsigned(fields.to_signed(value)) == value

    def test_fits_signed(self):
        assert fields.fits_signed(-2048, 12)
        assert fields.fits_signed(2047, 12)
        assert not fields.fits_signed(2048, 12)
        assert not fields.fits_signed(-2049, 12)

    def test_fits_unsigned(self):
        assert fields.fits_unsigned(0, 5)
        assert fields.fits_unsigned(31, 5)
        assert not fields.fits_unsigned(32, 5)
        assert not fields.fits_unsigned(-1, 5)


class TestImmediateRoundtrips:
    @given(st.integers(min_value=-2048, max_value=2047))
    def test_i_imm(self, imm):
        assert fields.i_imm_decode(fields.i_imm_encode(imm)) == imm

    @given(st.integers(min_value=-2048, max_value=2047))
    def test_s_imm(self, imm):
        assert fields.s_imm_decode(fields.s_imm_encode(imm)) == imm

    @given(st.integers(min_value=-2048, max_value=2047).map(lambda v: 2 * v))
    def test_b_imm(self, imm):
        assert fields.b_imm_decode(fields.b_imm_encode(imm)) == imm

    @given(st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1))
    def test_u_imm(self, upper):
        word = fields.u_imm_encode(upper)
        assert fields.u_imm_decode(word) == fields.sign_extend(upper << 12, 32)

    @given(st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1).map(lambda v: 2 * v))
    def test_j_imm(self, imm):
        assert fields.j_imm_decode(fields.j_imm_encode(imm)) == imm

    def test_i_imm_out_of_range(self):
        with pytest.raises(ValueError):
            fields.i_imm_encode(2048)

    def test_b_imm_odd_rejected(self):
        with pytest.raises(ValueError):
            fields.b_imm_encode(3)

    def test_j_imm_odd_rejected(self):
        with pytest.raises(ValueError):
            fields.j_imm_encode(1)

    def test_s_imm_fields_disjoint_from_regs(self):
        # S-format immediate must not touch rs1/rs2 fields (bits 24:15).
        word = fields.s_imm_encode(-1)
        assert word & (0x3FF << 15) == 0
