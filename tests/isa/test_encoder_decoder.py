"""Encoder/decoder: golden encodings, full roundtrips, illegal words."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.decoder import decode, is_legal
from repro.isa.encoder import EncodingError, encode
from repro.isa.instructions import (
    FMT_AMO,
    FMT_B,
    FMT_CSR,
    FMT_CSR_IMM,
    FMT_I,
    FMT_I_SHIFT32,
    FMT_I_SHIFT64,
    FMT_J,
    FMT_LR,
    FMT_S,
    FMT_U,
    INSTRUCTIONS,
)

# Hand-verified encodings (cross-checked against the RISC-V spec examples
# and GNU binutils output).
GOLDEN_ENCODINGS = [
    ("addi", dict(rd=1, rs1=2, imm=3), 0x00310093),
    ("add", dict(rd=1, rs1=2, rs2=3), 0x003100B3),
    ("sub", dict(rd=10, rs1=11, rs2=12), 0x40C58533),
    ("lui", dict(rd=10, imm=0x12345), 0x12345537),
    ("auipc", dict(rd=5, imm=1), 0x00001297),
    ("jal", dict(rd=1, imm=8), 0x008000EF),
    ("jalr", dict(rd=0, rs1=1, imm=0), 0x00008067),
    ("beq", dict(rs1=1, rs2=2, imm=-4), 0xFE208EE3),
    ("ld", dict(rd=5, rs1=2, imm=8), 0x00813283),
    ("sd", dict(rs2=5, rs1=2, imm=-16), 0xFE513823),
    ("slli", dict(rd=3, rs1=3, shamt=63), 0x03F19193),
    ("srai", dict(rd=3, rs1=3, shamt=1), 0x4011D193),
    ("mul", dict(rd=12, rs1=10, rs2=11), 0x02B50633),
    ("div", dict(rd=13, rs1=10, rs2=11), 0x02B546B3),
    ("csrrw", dict(rd=0, csr=0x300, rs1=1), 0x30009073),
    ("csrrs", dict(rd=6, csr=0xC00, rs1=0), 0xC0002373),
    ("fence", dict(), 0x0000000F),
    ("fence.i", dict(), 0x0000100F),
    ("ecall", dict(), 0x00000073),
    ("ebreak", dict(), 0x00100073),
    ("mret", dict(), 0x30200073),
    ("wfi", dict(), 0x10500073),
    ("lr.d", dict(rd=6, rs1=8), 0x1004332F),
    ("sc.d", dict(rd=7, rs1=8, rs2=6), 0x186433AF),
    ("amoswap.w", dict(rd=5, rs1=6, rs2=7, aq=1, rl=1), 0x0E7322AF),
]


class TestGoldenEncodings:
    @pytest.mark.parametrize("mnemonic,operands,expected", GOLDEN_ENCODINGS)
    def test_encode_matches_reference(self, mnemonic, operands, expected):
        assert encode(mnemonic, **operands) == expected

    @pytest.mark.parametrize("mnemonic,operands,expected", GOLDEN_ENCODINGS)
    def test_decode_recovers_mnemonic(self, mnemonic, operands, expected):
        instr = decode(expected)
        assert instr is not None
        assert instr.mnemonic == mnemonic


def _operand_strategy(spec):
    """Hypothesis strategy for a random valid operand set of one spec."""
    reg = st.integers(min_value=0, max_value=31)
    parts = {}
    for name in spec.operands:
        if name in ("rd", "rs1", "rs2"):
            parts[name] = reg
        elif name == "imm":
            if spec.fmt in (FMT_I, FMT_S):
                parts[name] = st.integers(min_value=-2048, max_value=2047)
            elif spec.fmt == FMT_B:
                parts[name] = st.integers(-2048, 2047).map(lambda v: 2 * v)
            elif spec.fmt == FMT_U:
                parts[name] = st.integers(-(1 << 19), (1 << 19) - 1)
            elif spec.fmt == FMT_J:
                parts[name] = st.integers(-(1 << 19), (1 << 19) - 1).map(
                    lambda v: 2 * v
                )
        elif name == "shamt":
            limit = 63 if spec.fmt == FMT_I_SHIFT64 else 31
            parts[name] = st.integers(min_value=0, max_value=limit)
        elif name == "zimm":
            parts[name] = st.integers(min_value=0, max_value=31)
        elif name == "csr":
            parts[name] = st.integers(min_value=0, max_value=0xFFF)
    if spec.fmt in (FMT_AMO, FMT_LR):
        parts["aq"] = st.integers(0, 1)
        parts["rl"] = st.integers(0, 1)
    return st.fixed_dictionaries(parts)


@pytest.mark.parametrize("mnemonic", sorted(INSTRUCTIONS))
def test_roundtrip_every_instruction(mnemonic):
    """encode -> decode recovers every operand, for every instruction."""
    spec = INSTRUCTIONS[mnemonic]

    @settings(max_examples=20, deadline=None)
    @given(_operand_strategy(spec))
    def check(operands):
        word = encode(mnemonic, **operands)
        instr = decode(word)
        assert instr is not None, f"{mnemonic} did not decode: {word:#x}"
        assert instr.mnemonic == mnemonic
        for name, value in operands.items():
            if name == "imm" and spec.fmt == FMT_U:
                # Encoder takes the 20-bit upper immediate; decoder returns
                # the shifted semantic value.
                from repro.isa.fields import sign_extend

                assert instr.imm == sign_extend(value << 12, 32)
            else:
                assert getattr(instr, name) == value, (name, value)

    check()


class TestIllegalWords:
    @pytest.mark.parametrize("word", [
        0x0000_0000,            # all zeros: defined illegal by the ISA
        0xFFFF_FFFF,            # all ones
        0x0000_00FF,            # unknown opcode
        0x30200077,             # mret with wrong low bits
        0x00004073,             # SYSTEM with reserved funct3=100
    ])
    def test_not_legal(self, word):
        assert decode(word) is None
        assert not is_legal(word)

    def test_reserved_amo_funct5(self):
        # amoswap.d with funct5 corrupted into a reserved pattern.
        word = encode("amoswap.d", rd=1, rs1=2, rs2=3)
        corrupted = (word & ~(0x1F << 27)) | (0b00101 << 27)
        assert decode(corrupted) is None

    def test_lr_with_nonzero_rs2_is_illegal(self):
        word = encode("lr.d", rd=1, rs1=2) | (3 << 20)
        assert decode(word) is None


class TestEncoderErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(EncodingError):
            encode("bogus")

    def test_register_out_of_range(self):
        with pytest.raises(EncodingError):
            encode("add", rd=32, rs1=0, rs2=0)

    def test_imm_out_of_range(self):
        with pytest.raises(EncodingError):
            encode("addi", rd=1, rs1=1, imm=4096)

    def test_shamt_out_of_range(self):
        with pytest.raises(EncodingError):
            encode("slliw", rd=1, rs1=1, shamt=32)

    def test_branch_imm_odd(self):
        with pytest.raises(EncodingError):
            encode("beq", rs1=0, rs2=0, imm=3)


class TestDecodeMemoisation:
    """Regression pin for the decode LRU: fuzzing campaigns re-decode the
    same few dozen words every test body, so repeats must be cache hits."""

    def test_decode_is_memoised(self):
        assert decode(0x00310093) is decode(0x00310093)

    def test_repeat_decode_hits_cache(self):
        decode.cache_clear()
        body = [encode("addi", rd=1, rs1=1, imm=i) for i in range(8)]
        for word in body:
            decode(word)
        misses_after_first_pass = decode.cache_info().misses
        hits_before = decode.cache_info().hits
        # A fuzzing campaign's steady state: same words, every run.
        for _ in range(5):
            for word in body:
                decode(word)
        info = decode.cache_info()
        assert info.misses == misses_after_first_pass  # no new misses
        assert info.hits >= hits_before + 5 * len(body)

    def test_cache_keyed_on_word(self):
        decode.cache_clear()
        a, b = encode("add", rd=1, rs1=2, rs2=3), encode("sub", rd=1, rs1=2, rs2=3)
        assert decode(a).mnemonic == "add"
        assert decode(b).mnemonic == "sub"
        assert decode.cache_info().misses == 2

    def test_illegal_words_also_cached(self):
        decode.cache_clear()
        assert decode(0xFFFFFFFF) is None
        assert decode(0xFFFFFFFF) is None
        assert decode.cache_info().hits == 1
