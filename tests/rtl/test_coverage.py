"""Condition-coverage database semantics."""

import pytest

from repro.rtl.coverage import ConditionCoverage


class TestDeclaration:
    def test_declare_returns_sequential_handles(self):
        cov = ConditionCoverage()
        assert cov.declare("a") == 0
        assert cov.declare("b") == 1
        assert cov.num_conditions == 2
        assert cov.total_arms == 4

    def test_duplicate_rejected(self):
        cov = ConditionCoverage()
        cov.declare("a")
        with pytest.raises(ValueError):
            cov.declare("a")

    def test_freeze_blocks_declaration(self):
        cov = ConditionCoverage()
        cov.freeze()
        with pytest.raises(RuntimeError):
            cov.declare("late")


class TestRecording:
    def test_arms_indexed_false_then_true(self):
        cov = ConditionCoverage()
        h = cov.declare("c")
        cov.record(h, False)
        assert cov.run_hits == {2 * h}
        cov.record(h, True)
        assert cov.run_hits == {2 * h, 2 * h + 1}

    def test_record_returns_value(self):
        cov = ConditionCoverage()
        h = cov.declare("c")
        assert cov.record(h, 1 == 1) is True
        assert cov.record(h, []) is False

    def test_begin_run_clears_hits(self):
        cov = ConditionCoverage()
        h = cov.declare("c")
        cov.record(h, True)
        cov.begin_run()
        assert cov.run_hits == set()

    def test_arm_names(self):
        cov = ConditionCoverage()
        cov.declare("core.alu.zero")
        assert cov.arm_name(0) == "core.alu.zero:F"
        assert cov.arm_name(1) == "core.alu.zero:T"

    def test_repeated_hits_idempotent(self):
        cov = ConditionCoverage()
        h = cov.declare("c")
        for _ in range(5):
            cov.record(h, True)
        assert len(cov.run_hits) == 1


class TestMaskRecording:
    def test_arm_bit_matches_record(self):
        cov = ConditionCoverage()
        h = cov.declare("c")
        assert cov.arm_bit(h, False) == 1 << (2 * h)
        assert cov.arm_bit(h, True) == 1 << (2 * h + 1)
        # Truthiness follows bool(), like record().
        assert cov.arm_bit(h, []) == cov.arm_bit(h, False)
        assert cov.arm_bit(h, 7) == cov.arm_bit(h, True)

    def test_record_mask_equals_scalar_records(self):
        group = ConditionCoverage()
        scalar = ConditionCoverage()
        handles = [(group.declare(f"c{i}"), scalar.declare(f"c{i}"))
                   for i in range(6)]
        group.freeze()
        scalar.freeze()
        mask = 0
        for (gh, sh), value in zip(handles, [True, False, True, True, False, False]):
            mask |= group.arm_bit(gh, value)
            scalar.record(sh, value)
        group.record_mask(mask)
        assert group.run_hits == set(scalar.run_hits)

    def test_record_mask_accumulates(self):
        cov = ConditionCoverage()
        h = cov.declare("c")
        cov.freeze()
        cov.record_mask(cov.arm_bit(h, False))
        cov.record_mask(cov.arm_bit(h, True))
        assert cov.run_hits == {2 * h, 2 * h + 1}


class TestArmRoundTrip:
    """Satellite: every set bit of a bitset report maps to a declared arm
    name, and every arm name maps back to its bit."""

    def test_arm_name_index_roundtrip_all_arms(self):
        cov = ConditionCoverage()
        for i in range(10):
            cov.declare(f"unit{i % 3}.cond{i}")
        cov.freeze()
        for arm in range(cov.total_arms):
            assert cov.arm_index(cov.arm_name(arm)) == arm

    def test_report_bits_resolve_to_declared_names_and_back(self):
        from repro.rtl.report import CoverageReport

        cov = ConditionCoverage()
        handles = [cov.declare(f"u.c{i}") for i in range(16)]
        cov.freeze()
        for h in handles[::2]:
            cov.record(h, True)
        for h in handles[::3]:
            cov.record(h, False)
        report = CoverageReport.from_coverage(cov)
        declared = set(cov.names())
        for arm in report.hits:
            assert arm < cov.total_arms
            name = cov.arm_name(arm)
            assert name.rpartition(":")[0] in declared
            assert cov.arm_index(name) == arm
        # Reverse direction: names of recorded arms pick out exactly the
        # report's bits.
        assert {cov.arm_index(cov.arm_name(a)) for a in report.hits} == set(
            report.hits
        )

    def test_arm_index_rejects_unknown(self):
        cov = ConditionCoverage()
        cov.declare("a")
        with pytest.raises(KeyError):
            cov.arm_index("nope:T")
        with pytest.raises(KeyError):
            cov.arm_index("a:X")
