"""Condition-coverage database semantics."""

import pytest

from repro.rtl.coverage import ConditionCoverage


class TestDeclaration:
    def test_declare_returns_sequential_handles(self):
        cov = ConditionCoverage()
        assert cov.declare("a") == 0
        assert cov.declare("b") == 1
        assert cov.num_conditions == 2
        assert cov.total_arms == 4

    def test_duplicate_rejected(self):
        cov = ConditionCoverage()
        cov.declare("a")
        with pytest.raises(ValueError):
            cov.declare("a")

    def test_freeze_blocks_declaration(self):
        cov = ConditionCoverage()
        cov.freeze()
        with pytest.raises(RuntimeError):
            cov.declare("late")


class TestRecording:
    def test_arms_indexed_false_then_true(self):
        cov = ConditionCoverage()
        h = cov.declare("c")
        cov.record(h, False)
        assert cov.run_hits == {2 * h}
        cov.record(h, True)
        assert cov.run_hits == {2 * h, 2 * h + 1}

    def test_record_returns_value(self):
        cov = ConditionCoverage()
        h = cov.declare("c")
        assert cov.record(h, 1 == 1) is True
        assert cov.record(h, []) is False

    def test_begin_run_clears_hits(self):
        cov = ConditionCoverage()
        h = cov.declare("c")
        cov.record(h, True)
        cov.begin_run()
        assert cov.run_hits == set()

    def test_arm_names(self):
        cov = ConditionCoverage()
        cov.declare("core.alu.zero")
        assert cov.arm_name(0) == "core.alu.zero:F"
        assert cov.arm_name(1) == "core.alu.zero:T"

    def test_repeated_hits_idempotent(self):
        cov = ConditionCoverage()
        h = cov.declare("c")
        for _ in range(5):
            cov.record(h, True)
        assert len(cov.run_hits) == 1
