"""Module hierarchy, clocked registers and the clock domain."""

import pytest

from repro.rtl.coverage import ConditionCoverage
from repro.rtl.module import Module
from repro.rtl.signal import Reg
from repro.rtl.simulator import ClockDomain


class Counter(Module):
    """Tiny design used to exercise the framework."""

    def __init__(self, path, cov):
        super().__init__(path, cov)
        self.count = self.reg(0)
        self.conditions("wrap")

    def evaluate(self):
        wrapped = self.cond("wrap", self.count.value == 3)
        self.count.next = 0 if wrapped else self.count.value + 1


class TestReg:
    def test_two_phase_commit(self):
        r = Reg(0)
        r.next = 7
        assert r.value == 0
        r.commit()
        assert r.value == 7

    def test_reset(self):
        r = Reg(5)
        r.next = 9
        r.commit()
        r.reset()
        assert r.value == 5
        assert r.next == 5


class TestModule:
    def test_condition_names_scoped_by_path(self):
        cov = ConditionCoverage()
        m = Module("top.sub", cov)
        m.condition("busy")
        m.cond("busy", True)
        assert cov.arm_name(1) == "top.sub.busy:T"

    def test_undeclared_condition_raises(self):
        m = Module("m", ConditionCoverage())
        with pytest.raises(KeyError):
            m.cond("nope", True)

    def test_child_registration_and_iteration(self):
        cov = ConditionCoverage()
        top = Module("top", cov)
        child = top.child(Module("top.child", cov))
        grand = child.child(Module("top.child.grand", cov))
        assert list(top.iter_modules()) == [top, child, grand]

    def test_reset_reaches_children(self):
        cov = ConditionCoverage()
        top = Module("top", cov)
        child = top.child(Counter("top.ctr", cov))
        child.count.next = 5
        child.count.commit()
        top.reset()
        assert child.count.value == 0


class TestClockDomain:
    def test_tick_advances_design(self):
        cov = ConditionCoverage()
        ctr = Counter("ctr", cov)
        clock = ClockDomain(ctr)
        for _ in range(5):
            clock.tick()
        assert clock.cycles == 5
        assert ctr.count.value == 1  # 0,1,2,3,wrap->0,1

    def test_wrap_condition_covered_both_ways(self):
        cov = ConditionCoverage()
        ctr = Counter("ctr", cov)
        clock = ClockDomain(ctr)
        for _ in range(5):
            clock.tick()
        assert cov.run_hits == {0, 1}

    def test_restart_resets(self):
        cov = ConditionCoverage()
        ctr = Counter("ctr", cov)
        clock = ClockDomain(ctr)
        clock.tick()
        clock.restart()
        assert clock.cycles == 0
        assert ctr.count.value == 0

    def test_top_without_evaluate_rejected(self):
        clock = ClockDomain(Module("m", ConditionCoverage()))
        with pytest.raises(TypeError):
            clock.tick()


class TestRecordKeyedGroup:
    def make_module(self):
        cov = ConditionCoverage()
        mod = Module("m", cov)
        mod.conditions("a", "b")
        cov.freeze()
        return mod, cov

    def test_builds_once_and_records_every_time(self):
        mod, cov = self.make_module()
        cache = {}
        calls = []

        def builder(key):
            calls.append(key)
            return mod.arm_bit("a", key) | mod.arm_bit("b", not key)

        mod.record_keyed_group(cache, True, builder, True)
        mod.record_keyed_group(cache, True, builder, True)
        assert calls == [True]          # memoized after the first sighting
        assert cov.run_hits == {1, 2}   # a:T, b:F
        cov.begin_run()
        mod.record_keyed_group(cache, True, builder, True)
        assert cov.run_hits == {1, 2}   # hits re-recorded from the cache

    def test_cache_bounded_by_cap(self):
        mod, cov = self.make_module()
        cache = {}
        build = lambda key: mod.arm_bit("a", key % 2)
        for key in range(10):
            mod.record_keyed_group(cache, key, build, key, cap=4)
        assert len(cache) <= 4          # cleared at the cap, never unbounded
