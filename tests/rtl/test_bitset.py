"""Packed Bitset semantics: the set-compatible bitmap under all coverage."""

import pickle

import pytest

from repro.rtl.bitset import Bitset, mask_of


class TestConstruction:
    def test_from_iterable(self):
        bs = Bitset.from_iterable({3, 0, 17}, nbits=32)
        assert set(bs) == {0, 3, 17}
        assert bs.nbits == 32

    def test_from_iterable_widens_to_max_index(self):
        bs = Bitset.from_iterable({100}, nbits=10)
        assert bs.nbits == 101
        assert 100 in bs

    def test_from_bytes_roundtrip(self):
        bs = Bitset.from_iterable({0, 9, 63, 64, 130}, nbits=192)
        again = Bitset.from_bytes(bs.to_bytes(), nbits=192)
        assert again == bs

    def test_from_bitset_is_identity(self):
        bs = Bitset.from_iterable({1, 2})
        assert Bitset.from_iterable(bs) == bs

    def test_from_words_roundtrip(self):
        bs = Bitset.from_iterable({0, 9, 63, 64, 130}, nbits=192)
        again = Bitset.from_words(bs.words(), nbits=192)
        assert again == bs

    def test_from_words_accepts_numpy_uint64(self):
        np = pytest.importorskip("numpy")
        row = np.array([1 << 63, 0, 3], dtype=np.uint64)
        assert Bitset.from_words(row) == {63, 128, 129}

    def test_from_words_empty(self):
        assert Bitset.from_words([]) == set()

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            Bitset(-1)

    def test_mask_of(self):
        assert mask_of([0, 2]) == 0b101
        assert mask_of([]) == 0


class TestSetProtocol:
    def test_membership(self):
        bs = Bitset.from_iterable({5, 70})
        assert 5 in bs and 70 in bs
        assert 6 not in bs and -1 not in bs

    def test_iteration_ascending(self):
        assert list(Bitset.from_iterable({64, 3, 0, 127})) == [0, 3, 64, 127]

    def test_len_and_bool(self):
        assert len(Bitset.from_iterable({1, 2, 3})) == 3
        assert not Bitset()
        assert Bitset.from_iterable({0})

    def test_equality_with_sets_both_directions(self):
        bs = Bitset.from_iterable({1, 9})
        assert bs == {1, 9}
        assert {1, 9} == bs
        assert bs == frozenset({1, 9})
        assert bs != {1}

    def test_equality_ignores_declared_width(self):
        assert Bitset.from_iterable({1}, nbits=8) == Bitset.from_iterable({1}, nbits=64)

    def test_hashable(self):
        assert len({Bitset.from_iterable({1}), Bitset.from_iterable({1})}) == 1

    def test_hash_consistent_with_frozenset(self):
        """eq/hash contract: a Bitset equals the frozenset of its members,
        so mixed hash containers must dedup them."""
        bs = Bitset.from_iterable({1, 9})
        assert hash(bs) == hash(frozenset({1, 9}))
        assert len({bs, frozenset({1, 9})}) == 1
        assert {bs: "x"}[frozenset({1, 9})] == "x"

    def test_isdisjoint(self):
        bs = Bitset.from_iterable({1, 2})
        assert bs.isdisjoint({3, 4})
        assert not bs.isdisjoint(Bitset.from_iterable({2}))


class TestAlgebra:
    def test_and_or_sub_xor(self):
        a = Bitset.from_iterable({0, 1, 2}, nbits=8)
        b = Bitset.from_iterable({2, 3}, nbits=8)
        assert a & b == {2}
        assert a | b == {0, 1, 2, 3}
        assert a - b == {0, 1}
        assert a ^ b == {0, 1, 3}

    def test_ops_accept_plain_sets(self):
        a = Bitset.from_iterable({0, 1, 2})
        assert a & {1, 5} == {1}
        assert a - {0} == {1, 2}

    def test_reflected_ops_from_sets(self):
        a = Bitset.from_iterable({0, 1})
        assert {0, 1, 2} - a == {2}
        assert {1, 5} & a == {1}
        assert {5} | a == {0, 1, 5}

    def test_raw_int_operand_rejected(self):
        with pytest.raises(TypeError):
            Bitset.from_iterable({1}) & 3

    def test_invert_bounded_by_universe(self):
        a = Bitset.from_iterable({0, 2}, nbits=4)
        assert ~a == {1, 3}

    def test_result_keeps_wider_universe(self):
        a = Bitset.from_iterable({0}, nbits=64)
        assert (a | {1}).nbits == 64


class TestPackedViews:
    def test_to_bytes_width(self):
        bs = Bitset.from_iterable({0, 8}, nbits=100)
        assert len(bs.to_bytes()) == 13  # ceil(100 / 8)
        assert len(bs.to_bytes(16)) == 16

    def test_words_uint64(self):
        bs = Bitset.from_iterable({0, 64}, nbits=128)
        words = bs.words()
        assert list(words) == [1, 1]
        assert words.dtype.str == "<u8"

    def test_to_int(self):
        assert Bitset.from_iterable({0, 2}).to_int() == 0b101


class TestPickle:
    def test_roundtrip(self):
        bs = Bitset.from_iterable(set(range(0, 300, 3)), nbits=300)
        again = pickle.loads(pickle.dumps(bs))
        assert again == bs
        assert again.nbits == bs.nbits

    def test_payload_is_packed_not_per_member(self):
        """The IPC payload motivates the whole engine: ~nbits/8 bytes,
        versus one pickled int per member for the frozenset it replaced.
        Measured on a chunk (the sharded executor's wire shape) so the
        per-object class-reference framing is memoized away."""
        members = set(range(0, 400, 2))
        chunk = [Bitset.from_iterable(members, nbits=400) for _ in range(16)]
        legacy_chunk = [frozenset(members) for _ in range(16)]
        packed = pickle.dumps(chunk)
        legacy = pickle.dumps(legacy_chunk)
        assert len(packed) < len(legacy) / 5
        assert len(packed) / 16 < 150  # ~50 bitmap bytes + framing each
