"""Coverage reports and cumulative merging."""

from repro.rtl.coverage import ConditionCoverage
from repro.rtl.report import CoverageReport, CumulativeCoverage


def make_report(hits, total_arms=10, cycles=5):
    return CoverageReport(hits=frozenset(hits), total_arms=total_arms,
                          cycles=cycles)


class TestCoverageReport:
    def test_from_coverage_snapshots_run_hits(self):
        cov = ConditionCoverage()
        h = cov.declare("x")
        cov.record(h, True)
        report = CoverageReport.from_coverage(cov, cycles=9)
        assert report.hits == {1}
        assert report.total_arms == 2
        assert report.cycles == 9

    def test_snapshot_is_immutable_copy(self):
        cov = ConditionCoverage()
        h = cov.declare("x")
        cov.record(h, True)
        report = CoverageReport.from_coverage(cov)
        cov.record(h, False)
        assert report.hits == {1}

    def test_standalone_metrics(self):
        report = make_report({0, 1, 4}, total_arms=10)
        assert report.standalone_count == 3
        assert report.standalone_fraction == 0.3

    def test_empty_design(self):
        assert make_report(set(), total_arms=0).standalone_fraction == 0.0


class TestCumulativeCoverage:
    def test_merge_counts_new_only(self):
        cumulative = CumulativeCoverage(total_arms=10)
        assert cumulative.merge(make_report({0, 1})) == 2
        assert cumulative.merge(make_report({1, 2})) == 1
        assert cumulative.merge(make_report({0, 1, 2})) == 0
        assert cumulative.count == 3

    def test_percent(self):
        cumulative = CumulativeCoverage(total_arms=8)
        cumulative.merge(make_report({0, 1, 2, 3}, total_arms=8))
        assert cumulative.percent == 50.0
