"""Event schema golden tests: every kind round-trips with its version tag,
and the sink protocol honours its cost contract (disabled sinks do nothing,
tees fan out, payloads may carry a ``kind`` field of their own)."""

from __future__ import annotations

import json

import pytest

from repro.obs.events import (
    EVENT_KINDS,
    NULL_SINK,
    SCHEMA_VERSION,
    Event,
    ListSink,
    NullSink,
    TeeSink,
    WorkerIdentity,
)

#: One representative payload per kind — the golden corpus.  Every kind the
#: runtime can emit must appear here (pinned below), so adding a kind
#: without a serialisation test fails loudly.
GOLDEN_PAYLOADS = {
    "worker_started": {"identity": {"host": "box", "pid": 7,
                                    "python": "3.11.0", "started": 1.5,
                                    "nonce": "1-abc"}},
    "fleet_started": {"mode": "streaming", "n_workers": 4,
                      "worker_slots": 4, "arms": 3, "resumed_tests": 128},
    "fleet_finished": {"mode": "streaming", "wall_seconds": 12.5,
                       "busy_seconds": 40.1, "slices": 18, "tests": 1024,
                       "union_percent": 71.2},
    "slice_dispatched": {"arm": 1, "name": "thehuzz-0", "ordinal": 3,
                         "attempt": 0, "n_tests": 64},
    "slice_completed": {"arm": 1, "name": "thehuzz-0", "tests": 256,
                        "ran": 64, "busy_seconds": 1.25,
                        "coverage_percent": 63.2},
    "slice_retried": {"arm": 2, "name": "random-0", "ordinal": 1,
                      "attempt": 1, "error": "RuntimeError: injected"},
    "slice_timeout": {"arm": 2, "name": "random-0", "ordinal": 1,
                      "limit_seconds": 5.0},
    "arm_quarantined": {"arm": 2, "name": "random-0",
                        "error": "RuntimeError: injected", "retries": 2,
                        "tests_run": 128},
    "pool_rebuilt": {"layer": "fleet", "reason": "worker death"},
    "checkpoint_written": {"rounds": 9, "dirty": [0, 2]},
    "arm_reward": {"arm": 0, "tests": 64, "reward": 0.031, "count": 4,
                   "mean": 0.05, "total": 0.2},
    "batch_generated": {"n": 16, "seconds": 0.002},
    "batch_executed": {"n": 16, "seconds": 0.118},
    "batch_folded": {"n": 16, "seconds": 0.003, "mismatches": 2},
    "coverage_point": {"campaign": "thehuzz-0", "tests": 128,
                       "sim_hours": 0.8, "coverage_percent": 61.0},
    "mismatch_found": {"kind": "rd_missing",
                       "signature": ["rd_missing", "mul"], "pc": 4096,
                       "detail": "golden writes x3, dut omits it"},
}


class TestEventSchema:
    def test_golden_corpus_covers_every_kind(self):
        assert set(GOLDEN_PAYLOADS) == set(EVENT_KINDS)

    @pytest.mark.parametrize("kind", sorted(EVENT_KINDS))
    def test_round_trip(self, kind):
        event = Event(kind=kind, data=GOLDEN_PAYLOADS[kind], t=123.25,
                      seq=7, writer="box-7-1")
        line = event.to_json()
        assert json.loads(line)["v"] == SCHEMA_VERSION
        clone = Event.from_json(line)
        assert clone == event
        # The line format is stable: one line, compact, sorted keys.
        assert "\n" not in line
        assert line == Event.from_json(line).to_json()

    def test_newer_schema_refused(self):
        line = Event(kind="fleet_started", data={}).to_json().replace(
            f'"v":{SCHEMA_VERSION}', f'"v":{SCHEMA_VERSION + 1}'
        )
        with pytest.raises(ValueError, match="newer than this reader"):
            Event.from_json(line)

    def test_older_schema_accepted(self):
        # A v0 reader artifact: older events load (forward-compat burden
        # is on payload handling, not the envelope).
        line = Event(kind="fleet_started", data={}, version=0).to_json()
        assert Event.from_json(line).version == 0


class TestWorkerIdentity:
    def test_local_identities_are_unique(self):
        a, b = WorkerIdentity.local(), WorkerIdentity.local()
        assert a.writer_id != b.writer_id

    def test_dict_round_trip(self):
        identity = WorkerIdentity.local()
        assert WorkerIdentity.from_dict(identity.as_dict()) == identity

    def test_writer_id_is_filesystem_safe(self):
        identity = WorkerIdentity(host="we?ird/host:name", pid=12,
                                  python="3.11.0", started=0.0, nonce="1-ff")
        assert "/" not in identity.writer_id
        assert "?" not in identity.writer_id
        assert ":" not in identity.writer_id


class TestSinks:
    def test_null_sink_is_disabled(self):
        assert NULL_SINK.enabled is False
        NULL_SINK.emit("fleet_started", anything="goes")  # must not raise

    def test_list_sink_preserves_order_and_seq(self):
        sink = ListSink()
        sink.emit("batch_generated", n=1, seconds=0.1)
        sink.emit("batch_executed", n=1, seconds=0.2)
        assert [e.kind for e in sink.events] == ["batch_generated",
                                                 "batch_executed"]
        assert [e.seq for e in sink.events] == [0, 1]

    def test_payload_may_contain_kind_field(self):
        # mismatch_found payloads carry their own "kind" key; the sink
        # protocol keeps the event kind positional-only so this works.
        sink = ListSink()
        sink.emit("mismatch_found", kind="rd_missing", pc=8)
        assert sink.events[0].kind == "mismatch_found"
        assert sink.events[0].data["kind"] == "rd_missing"

    def test_tee_drops_disabled_and_fans_out(self):
        a, b = ListSink(), ListSink()
        tee = TeeSink(a, NullSink(), b)
        assert tee.enabled
        assert len(tee.sinks) == 2
        tee.emit("pool_rebuilt", layer="fleet", reason="test")
        assert len(a.events) == len(b.events) == 1

    def test_tee_of_null_sinks_is_disabled(self):
        assert TeeSink(NullSink(), NullSink()).enabled is False

    def test_context_manager_closes(self):
        closed = []

        class Recording(ListSink):
            def close(self):
                closed.append(True)

        with TeeSink(Recording()):
            pass
        assert closed == [True]
