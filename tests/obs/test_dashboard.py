"""Dashboard smoke test: the JSON API serves live aggregates *while* an
in-process fleet writes to the store, plus the bug-classification rows
the E-BUGS table renders."""

from __future__ import annotations

import json
import threading
import time
import urllib.request

from repro.fuzzing.fleet import CampaignSpec, FleetRunner
from repro.fuzzing.scheduler import RoundRobin
from repro.obs.dashboard import DashboardServer, classify_bug_rows
from repro.obs.store import ResultsStore


def spec_pair(budget: int = 24) -> list[CampaignSpec]:
    return [
        CampaignSpec("thehuzz-0", fuzzer="thehuzz",
                     fuzzer_config={"body_instructions": 16}, seed=5,
                     batch_size=8, budget_tests=budget),
        CampaignSpec("random-0", fuzzer="random",
                     fuzzer_config={"body_instructions": 16}, seed=2,
                     batch_size=8, budget_tests=budget),
    ]


def get_json(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


class TestDashboardSmoke:
    def test_api_serves_while_fleet_runs(self, tmp_path):
        """Acceptance pin: poll the JSON API during an in-process fleet run
        and watch per-arm coverage, utilisation and health go live."""
        store = ResultsStore(tmp_path / "store")
        with DashboardServer(store, port=0, refresh_seconds=0.0) as server:
            polled: list[dict] = []

            def poll_forever(stop: threading.Event) -> None:
                while not stop.is_set():
                    polled.append(get_json(server.url + "api/summary"))
                    time.sleep(0.05)

            stop = threading.Event()
            poller = threading.Thread(target=poll_forever, args=(stop,),
                                      daemon=True)
            poller.start()
            try:
                with store.sink() as sink:
                    with FleetRunner(spec_pair(), n_workers=0,
                                     sink=sink) as fleet:
                        result = fleet.run_scheduled(RoundRobin(),
                                                     slice_tests=8)
            finally:
                stop.set()
                poller.join(timeout=10)

            # Polling a store mid-write never errored, and the final state
            # is served with everything the page renders.
            assert polled, "poller never completed a request"
            final = get_json(server.url + "api/summary")

        assert final["union_percent"] == result.union_percent
        assert [row["name"] for row in final["arms"]] == [
            "random-0", "thehuzz-0"]
        for row in final["arms"]:
            assert row["tests"] == 24
            assert row["curve"], "arm served without a coverage curve"
        assert final["utilisation"] > 0.0
        assert final["health"]["retries"] == 0
        assert final["phases"]["execution_seconds"] > 0.0
        assert {b["bug"] for b in final["bugs"]}  # classified E-BUGS rows
        assert final["live"] is False

    def test_endpoints(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        with store.sink() as sink:
            sink.emit("fleet_started", mode="rounds", worker_slots=1)
            sink.emit("coverage_point", campaign="a", tests=8,
                      sim_hours=0.1, coverage_percent=25.0)
        with DashboardServer(store, port=0, refresh_seconds=0.0) as server:
            page = urllib.request.urlopen(server.url, timeout=10).read()
            assert b"fleet dashboard" in page

            summary = get_json(server.url + "api/summary")
            assert summary["runs"] == 1 and summary["live"] is True
            assert "bugs" in summary

            events = get_json(server.url + "api/events?tail=2")
            assert [e["kind"] for e in events] == [
                "fleet_started", "coverage_point"]
            assert all(e["v"] == 1 for e in events)

            try:
                urllib.request.urlopen(server.url + "nope", timeout=10)
            except urllib.error.HTTPError as error:
                assert error.code == 404
            else:
                raise AssertionError("missing route did not 404")

    def test_summary_cache_honours_refresh_interval(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        server = DashboardServer(store, port=0, refresh_seconds=3600.0)
        try:
            before = server.summary()
            with store.sink() as sink:
                sink.emit("fleet_started", mode="rounds")
            assert server.summary() is before  # cached, not recomputed
        finally:
            server._server.server_close()


class TestClassifyBugRows:
    def test_known_and_unexplained_signatures(self):
        aggregates = {"mismatches": [
            {"kind": "rd_mismatch", "signature": ["nonsense", "xyz"],
             "pc": 0, "detail": "synthetic", "campaigns": ["a"]},
        ]}
        rows = classify_bug_rows(aggregates)
        assert rows[0]["bug"] == "UNEXPLAINED"
        assert rows[0]["campaigns"] == ["a"]

    def test_empty_store(self):
        assert classify_bug_rows({}) == []
        assert classify_bug_rows({"mismatches": []}) == []

    def test_degenerate_signature_is_unexplained(self):
        rows = classify_bug_rows({"mismatches": [
            {"kind": "", "signature": [], "pc": 0, "detail": "",
             "campaigns": []},
        ]})
        assert rows[0]["bug"] == "UNEXPLAINED"
