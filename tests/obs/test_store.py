"""Results store: durable round-trips, torn-tail recovery, deterministic
multi-writer linearisation, and the two acceptance pins — instrumented runs
stay bit-identical to uninstrumented ones, and a killed + resumed fleet's
store aggregates to the same numbers as an uninterrupted run's."""

from __future__ import annotations

import json

from repro.fuzzing.fleet import CampaignSpec, FleetRunner
from repro.fuzzing.scheduler import RoundRobin
from repro.obs.events import Event, ListSink, WorkerIdentity
from repro.obs.store import (
    ResultsStore,
    StoreAggregates,
    downsample,
    linearize_events,
)
from repro.rtl.bitset import Bitset


def spec_pair(budget: int = 24) -> list[CampaignSpec]:
    """Two small real-DUT campaign arms (TheHuzz + random, fixed seeds)."""
    return [
        CampaignSpec("thehuzz-0", fuzzer="thehuzz",
                     fuzzer_config={"body_instructions": 16}, seed=5,
                     batch_size=8, budget_tests=budget),
        CampaignSpec("random-0", fuzzer="random",
                     fuzzer_config={"body_instructions": 16}, seed=2,
                     batch_size=8, budget_tests=budget),
    ]


def fingerprint(result):
    """Everything the acceptance criterion calls "bit-identical"."""
    return (
        [c.curve for c in result.campaigns],
        [c.final_coverage.to_bytes() for c in result.campaigns],
        result.union_percent,
        result.unique_signatures,
    )


class TestStoreRoundTrip:
    def test_events_and_coverage_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        bitmap = Bitset.from_iterable((0, 3, 11), nbits=12)
        with store.sink() as sink:
            sink.emit("fleet_started", mode="rounds", worker_slots=1)
            sink.emit("coverage_point", campaign="a", tests=8,
                      sim_hours=0.1, coverage_percent=25.0)
            sink.save_coverage("00_a", bitmap)

        events = store.read_events()
        assert [e.kind for e in events] == [
            "worker_started", "fleet_started", "coverage_point"]
        assert events[0].data["identity"]["pid"] == sink.identity.pid
        assert events[2].data["tests"] == 8
        # One writer, contiguous per-writer sequence numbers.
        assert [e.seq for e in events] == [0, 1, 2]
        assert len({e.writer for e in events}) == 1

        bitmaps = store.load_coverage()
        assert bitmaps["00_a"].nbits == 12
        assert bitmaps["00_a"].to_bytes() == bitmap.to_bytes()

    def test_reopen_is_not_create(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        again = ResultsStore(store.directory, create=False)
        assert again.meta_path.exists()
        meta = json.loads(store.meta_path.read_text())
        assert "version" in meta and "created" in meta

    def test_closed_sink_drops_late_emissions(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        sink = store.sink()
        sink.close()
        sink.close()  # idempotent
        sink.emit("fleet_started", mode="rounds")  # must not raise
        assert [e.kind for e in store.read_events()] == ["worker_started"]


class TestTornTail:
    def test_torn_final_line_keeps_intact_prefix(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        with store.sink() as sink:
            sink.emit("fleet_started", mode="rounds")
            sink.emit("coverage_point", campaign="a", tests=8)
        # Simulate a kill mid-append: a half-written final record.
        with sink.path.open("a", encoding="utf-8") as fh:
            fh.write('{"v":1,"kind":"slice_com')
        events = store.read_events()
        assert [e.kind for e in events] == [
            "worker_started", "fleet_started", "coverage_point"]

    def test_garbage_segment_yields_empty_prefix(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        store.events_dir.mkdir(parents=True, exist_ok=True)
        (store.events_dir / "rogue.jsonl").write_text("not json at all\n")
        assert store.read_segments()["rogue"] == []
        assert store.read_events() == []

    def test_aggregate_of_empty_store(self, tmp_path):
        agg = ResultsStore(tmp_path / "store").aggregate()
        assert agg.arms == [] and agg.runs == 0 and agg.live is False
        assert agg.union_percent == 0.0
        assert isinstance(agg.as_dict(), dict)


class TestLinearize:
    def segments(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        store.events_dir.mkdir(parents=True, exist_ok=True)
        alpha = [Event("coverage_point", {"campaign": "a", "tests": n},
                       t=10.0 + n, seq=n, writer="alpha")
                 for n in range(3)]
        # beta's wall clock interleaves with alpha's, and one event ties
        # exactly on t — the (t, writer, seq) key must still be total.
        beta = [Event("coverage_point", {"campaign": "b", "tests": 0},
                      t=10.5, seq=0, writer="beta"),
                Event("coverage_point", {"campaign": "b", "tests": 1},
                      t=11.0, seq=1, writer="beta")]
        for name, events in (("alpha", alpha), ("beta", beta)):
            (store.events_dir / f"{name}.jsonl").write_text(
                "".join(e.to_json() + "\n" for e in events))
        return store, alpha, beta

    def test_merge_is_deterministic_function_of_contents(self, tmp_path):
        store, alpha, beta = self.segments(tmp_path)
        merged = store.read_events()
        assert merged == [alpha[0], beta[0], alpha[1], beta[1], alpha[2]]
        # Pure function of the event set: any input order linearizes the
        # same (pinned under PYTHONHASHSEED=0 by CI's observability job).
        shuffled = [alpha[2], beta[1], alpha[0], beta[0], alpha[1]]
        assert linearize_events(shuffled) == merged

    def test_tie_on_t_breaks_by_writer_then_seq(self):
        tie = [Event("fleet_started", {}, t=5.0, seq=1, writer="b"),
               Event("fleet_started", {}, t=5.0, seq=0, writer="b"),
               Event("fleet_started", {}, t=5.0, seq=9, writer="a")]
        assert [(e.writer, e.seq) for e in linearize_events(tie)] == [
            ("a", 9), ("b", 0), ("b", 1)]


class TestDownsample:
    def test_short_curves_pass_through(self):
        points = [[n, 0.0, 0.0] for n in range(10)]
        assert downsample(points, cap=256) == points

    def test_long_curves_keep_last_point(self):
        points = [[n, 0.0, 0.0] for n in range(1000)]
        thinned = downsample(points, cap=256)
        assert len(thinned) <= 257
        assert thinned[0] == points[0]
        assert thinned[-1] == points[-1]

    def test_no_cap(self):
        points = [[n, 0.0, 0.0] for n in range(10)]
        assert downsample(points, cap=0) == points


class TestFleetWithStore:
    def test_store_sink_run_is_bit_identical(self, tmp_path):
        """Acceptance pin: telemetry observes, never perturbs — a run with
        a StoreSink attached equals the uninstrumented run bit for bit."""
        with FleetRunner(spec_pair(16), n_workers=0) as fleet:
            reference = fleet.run_scheduled(RoundRobin(), slice_tests=8)
        store = ResultsStore(tmp_path / "store")
        with store.sink() as sink:
            with FleetRunner(spec_pair(16), n_workers=0,
                             sink=sink) as fleet:
                observed = fleet.run_scheduled(RoundRobin(), slice_tests=8)
        assert fingerprint(observed) == fingerprint(reference)

    def test_store_aggregates_match_fleet_result(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        with store.sink() as sink:
            with FleetRunner(spec_pair(16), n_workers=0,
                             sink=sink) as fleet:
                result = fleet.run_scheduled(RoundRobin(), slice_tests=8)
        agg = store.aggregate()
        assert agg.runs == 1 and agg.live is False
        assert agg.mode == "rounds"
        assert agg.union_percent == result.union_percent
        assert agg.total_tests == sum(c.tests_run for c in result.campaigns)
        names = [row["name"] for row in agg.arms]
        assert names == sorted(c.name for c in result.campaigns)
        for row, campaign in zip(
                agg.arms, sorted(result.campaigns, key=lambda c: c.name)):
            assert row["tests"] == campaign.tests_run
            assert row["curve"][-1][2] == campaign.curve[-1].coverage_percent
        # Phase timers accounted every batch somewhere.
        assert agg.phases["execution_seconds"] > 0.0
        assert agg.utilisation > 0.0
        # Deduped mismatch signatures match the fleet's.
        stored = {tuple(_as_tuple(m["signature"])) for m in agg.mismatches}
        assert stored == result.unique_signatures

    def test_kill_and_resume_store_equals_uninterrupted(self, tmp_path):
        """Acceptance pin: a killed fleet's store, reopened by the resumed
        run with a fresh writer segment, aggregates to the same arms as an
        uninterrupted run — completed slices are never duplicated."""
        clean_store = ResultsStore(tmp_path / "clean")
        with clean_store.sink() as sink:
            with FleetRunner(spec_pair(), n_workers=0, sink=sink) as fleet:
                fleet.run_scheduled(RoundRobin(), slice_tests=8)

        killed_store = ResultsStore(tmp_path / "killed")
        with killed_store.sink() as sink:
            with FleetRunner(spec_pair(), n_workers=0, sink=sink,
                             checkpoint_dir=tmp_path / "ckpt") as fleet:
                fleet.run_scheduled(RoundRobin(), slice_tests=8,
                                    total_tests=16)
        with killed_store.sink() as sink:  # resumed run: new segment
            with FleetRunner(spec_pair(), n_workers=0, sink=sink,
                             checkpoint_dir=tmp_path / "ckpt") as fleet:
                fleet.run_scheduled(RoundRobin(), slice_tests=8)

        assert len(list(killed_store.events_dir.glob("*.jsonl"))) == 2
        clean, resumed = clean_store.aggregate(), killed_store.aggregate()
        assert resumed.runs == 2 and clean.runs == 1
        strip = lambda rows: [
            {k: v for k, v in row.items() if k not in ("busy_seconds",
                                                       "phases")}
            for row in rows
        ]
        assert strip(resumed.arms) == strip(clean.arms)
        assert resumed.union_percent == clean.union_percent
        assert resumed.total_tests == clean.total_tests

    def test_pooled_relay_matches_in_process(self, tmp_path):
        """Worker-relayed events aggregate like locally-emitted ones."""
        local_store = ResultsStore(tmp_path / "local")
        with local_store.sink() as sink:
            with FleetRunner(spec_pair(16), n_workers=0, sink=sink) as fleet:
                fleet.run_scheduled(RoundRobin(), slice_tests=8)
        pooled_store = ResultsStore(tmp_path / "pooled")
        with pooled_store.sink() as sink:
            with FleetRunner(spec_pair(16), n_workers=2, sink=sink) as fleet:
                fleet.run_scheduled(RoundRobin(), slice_tests=8)
        local, pooled = local_store.aggregate(), pooled_store.aggregate()
        strip = lambda rows: [
            {k: v for k, v in row.items() if k not in ("busy_seconds",
                                                       "phases")}
            for row in rows
        ]
        assert strip(pooled.arms) == strip(local.arms)
        assert pooled.union_percent == local.union_percent
        # Exactly one writer segment: workers relay through the parent.
        assert len(list(pooled_store.events_dir.glob("*.jsonl"))) == 1


class TestAggregatesFromSynthetic:
    def test_slice_dedup_by_cumulative_tests(self):
        # The one legitimately re-run slice after a kill (completed, event
        # written, checkpoint pre-empted) must not double-count.
        twice = [
            Event("slice_completed",
                  {"name": "a", "tests": 8, "busy_seconds": 1.0,
                   "coverage_percent": 10.0}, t=1.0, seq=0, writer="w1"),
            Event("slice_completed",
                  {"name": "a", "tests": 8, "busy_seconds": 1.0,
                   "coverage_percent": 10.0}, t=2.0, seq=0, writer="w2"),
        ]
        agg = StoreAggregates.build(twice, {})
        assert agg.arms[0]["slices"] == 1
        assert agg.arms[0]["busy_seconds"] == 1.0

    def test_live_run_detected_from_unmatched_start(self):
        events = [
            Event("fleet_started", {"mode": "rounds", "worker_slots": 2},
                  t=100.0, seq=0, writer="w"),
            Event("coverage_point", {"campaign": "a", "tests": 8},
                  t=130.0, seq=1, writer="w"),
        ]
        agg = StoreAggregates.build(events, {})
        assert agg.live is True
        assert agg.wall_seconds == 30.0
        assert agg.worker_slots == 2

    def test_health_counters_and_quarantine(self):
        events = [
            Event("slice_timeout", {"name": "a"}, t=1.0, seq=0, writer="w"),
            Event("slice_retried", {"name": "a"}, t=2.0, seq=1, writer="w"),
            Event("pool_rebuilt", {"layer": "fleet"}, t=3.0, seq=2,
                  writer="w"),
            Event("arm_quarantined",
                  {"name": "a", "error": "boom", "retries": 2,
                   "tests_run": 16}, t=4.0, seq=3, writer="w"),
        ]
        agg = StoreAggregates.build(events, {})
        assert agg.health["timeouts"] == 1
        assert agg.health["retries"] == 1
        assert agg.health["pool_rebuilds"] == 1
        assert agg.health["quarantined"][0]["name"] == "a"
        assert agg.arms[0]["quarantined"] is True

    def test_mismatch_dedup_with_attribution(self):
        def found(writer, campaign, t):
            return Event("mismatch_found",
                         {"campaign": campaign, "kind": "rd_missing",
                          "signature": ["rd_missing", "mul"], "pc": 4},
                         t=t, seq=0, writer=writer)

        agg = StoreAggregates.build(
            [found("w1", "a", 1.0), found("w2", "b", 2.0),
             found("w1", "a", 3.0)], {})
        assert len(agg.mismatches) == 1
        assert agg.mismatches[0]["campaigns"] == ["a", "b"]


def _as_tuple(value):
    if isinstance(value, list):
        return tuple(_as_tuple(item) for item in value)
    return value
