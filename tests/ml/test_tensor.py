"""Autograd engine: per-op numerical gradient checks and graph semantics."""

import numpy as np
import pytest

from repro.ml.tensor import Tensor, no_grad

RNG = np.random.default_rng(42)


def numerical_grad(f, x, eps=1e-3):
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x)
    for idx in np.ndindex(x.shape):
        hi = x.copy()
        hi[idx] += eps
        lo = x.copy()
        lo[idx] -= eps
        grad[idx] = (f(hi) - f(lo)) / (2 * eps)
    return grad


def check_grad(build, shape, atol=2e-3):
    """Compare analytic and numerical gradients for scalar-valued build(x)."""
    x = RNG.normal(size=shape).astype(np.float32)
    t = Tensor.param(x.copy())
    build(t).backward()
    expected = numerical_grad(lambda v: build(Tensor.param(v.astype(np.float32))).item(), x)
    assert np.allclose(t.grad, expected, atol=atol), (
        f"max err {np.abs(t.grad - expected).max()}"
    )


class TestArithmeticGrads:
    def test_add(self):
        check_grad(lambda t: (t + t * 2.0).sum(), (3, 4))

    def test_mul(self):
        other = Tensor(RNG.normal(size=(3, 4)).astype(np.float32))
        check_grad(lambda t: (t * other).sum(), (3, 4))

    def test_sub_neg(self):
        check_grad(lambda t: (1.0 - t - t).sum(), (5,))

    def test_div(self):
        check_grad(lambda t: (t / 2.0).sum(), (4,))

    def test_pow(self):
        x = np.abs(RNG.normal(size=(4,))).astype(np.float32) + 0.5
        t = Tensor.param(x.copy())
        (t ** 3.0).sum().backward()
        assert np.allclose(t.grad, 3 * x**2, atol=1e-2)

    def test_broadcast_add_bias(self):
        bias = Tensor.param(np.zeros(4, dtype=np.float32))
        x = Tensor(RNG.normal(size=(3, 4)).astype(np.float32))
        (x + bias).sum().backward()
        assert bias.grad.shape == (4,)
        assert np.allclose(bias.grad, 3.0)

    def test_broadcast_scalar_like(self):
        scale = Tensor.param(np.ones((1, 1), dtype=np.float32))
        x = Tensor(RNG.normal(size=(3, 4)).astype(np.float32))
        (x * scale).sum().backward()
        assert scale.grad.shape == (1, 1)
        assert np.allclose(scale.grad, x.data.sum(), atol=1e-4)


class TestMatmulGrads:
    def test_2d(self):
        other = Tensor(RNG.normal(size=(4, 5)).astype(np.float32))
        check_grad(lambda t: t.matmul(other).sum(), (3, 4))

    def test_batched(self):
        other = Tensor(RNG.normal(size=(2, 4, 5)).astype(np.float32))
        check_grad(lambda t: t.matmul(other).sum(), (2, 3, 4))

    def test_right_operand(self):
        left = Tensor(RNG.normal(size=(3, 4)).astype(np.float32))
        check_grad(lambda t: left.matmul(t).sum(), (4, 5))


class TestNonlinearGrads:
    def test_exp(self):
        check_grad(lambda t: t.exp().sum(), (3, 3))

    def test_log(self):
        x = np.abs(RNG.normal(size=(4,))).astype(np.float32) + 0.5
        t = Tensor.param(x.copy())
        t.log().sum().backward()
        assert np.allclose(t.grad, 1.0 / x, atol=1e-3)

    def test_tanh(self):
        check_grad(lambda t: t.tanh().sum(), (3, 4))

    def test_gelu(self):
        check_grad(lambda t: t.gelu().sum(), (3, 4))

    def test_log_softmax(self):
        # float32 cancellation in the row sums needs a looser tolerance
        check_grad(lambda t: t.log_softmax().sum(), (3, 5), atol=5e-3)

    def test_softmax_rows_sum_to_one(self):
        t = Tensor(RNG.normal(size=(4, 7)).astype(np.float32))
        assert np.allclose(t.softmax().data.sum(axis=-1), 1.0, atol=1e-5)

    def test_log_softmax_stability(self):
        t = Tensor(np.array([[1000.0, 1000.0]], dtype=np.float32))
        out = t.log_softmax().data
        assert np.all(np.isfinite(out))


class TestReductionsAndShape:
    def test_sum_axis(self):
        check_grad(lambda t: (t.sum(axis=0) * 2.0).sum(), (3, 4))

    def test_sum_keepdims(self):
        check_grad(lambda t: (t * t.sum(axis=-1, keepdims=True)).sum(), (3, 4))

    def test_mean(self):
        t = Tensor.param(np.ones((2, 5), dtype=np.float32))
        t.mean().backward()
        assert np.allclose(t.grad, 0.1)

    def test_reshape_transpose(self):
        check_grad(lambda t: t.reshape(4, 3).transpose(1, 0).sum(), (3, 4))

    def test_getitem(self):
        check_grad(lambda t: (t[1] * 2.0).sum(), (3, 4))

    def test_gather_last(self):
        idx = np.array([0, 2, 1])
        check_grad(lambda t: t.gather_last(idx).sum(), (3, 4))

    def test_swap_last(self):
        t = Tensor(RNG.normal(size=(2, 3, 4)).astype(np.float32))
        assert t.swap_last().shape == (2, 4, 3)


class TestClipMinimum:
    def test_clip_grads_blocked_outside(self):
        t = Tensor.param(np.array([-2.0, 0.0, 2.0], dtype=np.float32))
        t.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(t.grad, [0.0, 1.0, 0.0])

    def test_minimum_routes_gradient(self):
        a = Tensor.param(np.array([1.0, 5.0], dtype=np.float32))
        b = Tensor.param(np.array([3.0, 2.0], dtype=np.float32))
        a.minimum(b).sum().backward()
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])


class TestLayerNormGrad:
    def test_input_grad(self):
        gain = Tensor(np.ones(5, dtype=np.float32))
        bias = Tensor(np.zeros(5, dtype=np.float32))
        weight = Tensor(RNG.normal(size=(3, 5)).astype(np.float32))
        check_grad(
            lambda t: (t.layernorm(gain, bias) * weight).sum(),
            (3, 5),
            atol=5e-3,
        )

    def test_gain_bias_grads(self):
        x = Tensor(RNG.normal(size=(3, 5)).astype(np.float32))
        gain = Tensor.param(np.ones(5, dtype=np.float32))
        bias = Tensor.param(np.zeros(5, dtype=np.float32))
        x.layernorm(gain, bias).sum().backward()
        assert bias.grad.shape == (5,)
        assert np.allclose(bias.grad, 3.0)
        assert gain.grad.shape == (5,)


class TestGraphSemantics:
    def test_diamond_graph_accumulates(self):
        t = Tensor.param(np.array([2.0], dtype=np.float32))
        a = t * 3.0
        b = t * 4.0
        (a + b).sum().backward()
        assert np.allclose(t.grad, [7.0])

    def test_backward_requires_scalar(self):
        t = Tensor.param(np.ones((2, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            (t * 2.0).backward()

    def test_detach_stops_gradient(self):
        t = Tensor.param(np.ones(3, dtype=np.float32))
        (t.detach() * 5.0 + t).sum().backward()
        assert np.allclose(t.grad, 1.0)

    def test_no_grad_disables_graph(self):
        t = Tensor.param(np.ones(3, dtype=np.float32))
        with no_grad():
            out = (t * 2.0).sum()
        assert out._parents == ()
        assert not out.requires_grad

    def test_repeated_backward_accumulates_into_params(self):
        t = Tensor.param(np.ones(2, dtype=np.float32))
        (t * 2.0).sum().backward()
        (t * 2.0).sum().backward()
        assert np.allclose(t.grad, [4.0, 4.0])
