"""Step-1 LM training and the full three-step pipeline at tiny scale."""

import numpy as np
import pytest

from repro.dataset.corpus import Corpus
from repro.ml.lm_training import LMTrainConfig, LMTrainer
from repro.ml.pipeline import ChatFuzzPipeline, PipelineConfig, PromptSampler
from repro.ml.rewards import DisassemblerReward
from repro.ml.tokenizer import HalfwordTokenizer
from repro.ml.transformer import GPT2Config, GPT2LMModel
from repro.soc.harness import make_rocket_harness

TINY_MODEL = GPT2Config(dim=16, n_layers=1, n_heads=2, max_seq=48)


@pytest.fixture(scope="module")
def corpus():
    return Corpus.synthesize(30, seed=3)


class TestLMTrainer:
    def test_loss_decreases(self, corpus):
        tokenizer = HalfwordTokenizer(max_vocab=512).train(corpus)
        model = GPT2LMModel(
            GPT2Config(vocab_size=tokenizer.vocab_size, max_seq=48,
                       dim=16, n_layers=1, n_heads=2), seed=0)
        trainer = LMTrainer(model, tokenizer,
                            LMTrainConfig(steps=60, batch_size=8, lr=2e-3))
        result = trainer.train(corpus)
        assert result.final_loss < result.initial_loss * 0.7

    def test_sequences_chunked_to_context(self, corpus):
        tokenizer = HalfwordTokenizer().train(corpus)
        model = GPT2LMModel(
            GPT2Config(vocab_size=tokenizer.vocab_size, max_seq=32,
                       dim=16, n_layers=1, n_heads=2))
        trainer = LMTrainer(model, tokenizer)
        sequences = trainer._build_sequences(corpus)
        assert sequences.shape[1] == 32
        assert sequences.dtype == np.int64

    def test_perplexity_finite(self, corpus):
        tokenizer = HalfwordTokenizer().train(corpus)
        model = GPT2LMModel(
            GPT2Config(vocab_size=tokenizer.vocab_size, max_seq=32,
                       dim=16, n_layers=1, n_heads=2))
        trainer = LMTrainer(model, tokenizer)
        assert np.isfinite(trainer.perplexity(corpus))

    def test_empty_corpus_rejected(self):
        tokenizer = HalfwordTokenizer().train([[0x13]])
        model = GPT2LMModel(GPT2Config(vocab_size=8, max_seq=16,
                                       dim=16, n_layers=1, n_heads=2))
        with pytest.raises(ValueError):
            LMTrainer(model, tokenizer).train([])


class TestPromptSampler:
    def test_prompt_lengths_in_bounds(self, corpus):
        tokenizer = HalfwordTokenizer().train(corpus)
        sampler = PromptSampler(corpus, tokenizer, (2, 5), seed=1)
        for _ in range(10):
            batch, n_instr = sampler.sample(4)
            assert 2 <= n_instr <= 5
            assert batch.shape == (4, 1 + 2 * n_instr)  # BOS + halfwords


@pytest.fixture(scope="module")
def tiny_pipeline():
    config = PipelineConfig(
        corpus_functions=30,
        tokenizer_max_vocab=512,
        model=TINY_MODEL,
        lm=LMTrainConfig(steps=50, batch_size=8, lr=2e-3),
        step2_steps=2,
        step3_steps=1,
        ppo_batch_size=6,
        response_instructions=6,
    )
    return ChatFuzzPipeline(config)


class TestPipeline:
    def test_vocab_wired_into_model(self, tiny_pipeline):
        assert (tiny_pipeline.model.config.vocab_size
                == tiny_pipeline.tokenizer.vocab_size)

    def test_all_three_steps_run(self, tiny_pipeline):
        result = tiny_pipeline.run_all(make_rocket_harness())
        assert result.lm_result is not None
        assert len(result.step2_history.steps) == 2
        assert len(result.step3_history.steps) == 1
        assert result.step3_coverage_percent > 0

    def test_generator_emits_decodable_bodies(self, tiny_pipeline):
        generator = tiny_pipeline.make_generator(seed=1)
        bodies = generator.generate_batch(4)
        assert len(bodies) == 4
        for body in bodies:
            assert len(body) > 0
            assert all(isinstance(w, int) for w in body)

    def test_generator_bodies_mostly_valid(self, tiny_pipeline):
        """Even a tiny trained model produces mostly-decodable instructions
        (the corpus prompts alone guarantee a floor)."""
        reward = DisassemblerReward()
        bodies = tiny_pipeline.make_generator(seed=2).generate_batch(8)
        rates = [reward.validity_rate(b) for b in bodies]
        assert sum(rates) / len(rates) > 0.4
