"""Reward agents: Eq. 1 semantics and coverage-reward bookkeeping."""

import pytest

from repro.isa.encoder import encode
from repro.ml.rewards import CoverageReward, DisassemblerReward
from repro.soc.harness import make_rocket_harness

NOP = encode("addi", rd=0, rs1=0, imm=0)


class TestDisassemblerReward:
    def test_equation_one_unnormalised(self):
        reward = DisassemblerReward(normalize=False)
        # N=4, Invalid=1  ->  4 - 5*1 = -1
        assert reward([NOP, NOP, NOP, 0]) == -1.0

    def test_all_valid_unnormalised(self):
        reward = DisassemblerReward(normalize=False)
        assert reward([NOP] * 6 ) == 6.0

    def test_normalised_bounds(self):
        reward = DisassemblerReward(normalize=True)
        assert reward([NOP] * 8) == 1.0
        # all invalid: (N - 5N) / N = -4
        assert reward([0] * 8) == -4.0

    def test_penalty_configurable(self):
        reward = DisassemblerReward(penalty=2.0, normalize=False)
        assert reward([NOP, 0]) == 0.0

    def test_empty_sequence(self):
        assert DisassemblerReward()([]) == 0.0

    def test_validity_rate(self):
        reward = DisassemblerReward()
        assert reward.validity_rate([NOP, 0]) == 0.5
        assert reward.validity_rate([]) == 1.0

    def test_noise_only_for_ablation(self):
        clean = DisassemblerReward(seed=1)
        noisy = DisassemblerReward(noise_stddev=1.0, seed=1)
        words = [NOP] * 4
        assert clean(words) == clean(words)
        assert noisy(words) != noisy(words)  # fresh noise each call


class TestCoverageReward:
    def test_reward_positive_for_first_input(self):
        harness = make_rocket_harness()
        reward = CoverageReward(harness)
        reward.begin_batch()
        value = reward([encode("mul", rd=5, rs1=10, rs2=11)])
        assert value > 0
        assert reward.total_percent > 0

    def test_stagnation_scores_below_discovery(self):
        harness = make_rocket_harness()
        reward = CoverageReward(harness)
        body = [encode("addi", rd=5, rs1=0, imm=1)]
        reward.begin_batch()
        first = reward(body)
        reward.begin_batch()
        second = reward(body)  # identical input: no new coverage
        assert second < first

    def test_history_tracks_campaign_total(self):
        harness = make_rocket_harness()
        reward = CoverageReward(harness)
        reward.begin_batch()
        reward([NOP])
        reward([encode("mul", rd=5, rs1=10, rs2=11)])
        assert len(reward.history) == 2
        assert reward.history[1] >= reward.history[0]
