"""Attention: causality is the must-hold invariant."""

import numpy as np

from repro.ml.attention import CausalSelfAttention, TransformerBlock, causal_mask
from repro.ml.tensor import Tensor

RNG = np.random.default_rng(7)


class TestCausalMask:
    def test_shape_and_pattern(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert np.all(mask[np.tril_indices(4)] == 0)
        assert np.all(mask[np.triu_indices(4, k=1)] < -1e8)


class TestCausalSelfAttention:
    def test_output_shape(self):
        attn = CausalSelfAttention(8, 2, RNG)
        out = attn(Tensor(RNG.normal(size=(3, 5, 8)).astype(np.float32)))
        assert out.shape == (3, 5, 8)

    def test_causality(self):
        """Changing a future token must not change past outputs."""
        attn = CausalSelfAttention(8, 2, RNG)
        x = RNG.normal(size=(1, 6, 8)).astype(np.float32)
        base = attn(Tensor(x)).data.copy()
        perturbed = x.copy()
        perturbed[0, 4] += 10.0  # tamper with position 4
        out = attn(Tensor(perturbed)).data
        assert np.allclose(out[0, :4], base[0, :4], atol=1e-5)
        assert not np.allclose(out[0, 4:], base[0, 4:], atol=1e-3)

    def test_rejects_bad_head_split(self):
        import pytest

        with pytest.raises(ValueError):
            CausalSelfAttention(7, 2, RNG)

    def test_gradients_flow(self):
        attn = CausalSelfAttention(4, 1, RNG)
        x = Tensor.param(RNG.normal(size=(1, 3, 4)).astype(np.float32))
        attn(x).sum().backward()
        assert x.grad is not None
        assert np.any(x.grad != 0)


class TestTransformerBlock:
    def test_residual_structure(self):
        block = TransformerBlock(8, 2, 4, RNG)
        x = Tensor(RNG.normal(size=(2, 4, 8)).astype(np.float32))
        out = block(x)
        assert out.shape == (2, 4, 8)

    def test_block_is_causal(self):
        block = TransformerBlock(8, 2, 4, RNG)
        x = RNG.normal(size=(1, 5, 8)).astype(np.float32)
        base = block(Tensor(x)).data.copy()
        perturbed = x.copy()
        perturbed[0, -1] += 5.0
        out = block(Tensor(perturbed)).data
        assert np.allclose(out[0, :-1], base[0, :-1], atol=1e-5)
