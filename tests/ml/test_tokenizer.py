"""Machine-language tokenizers: round-trips and degradation behaviour."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.corpus import Corpus
from repro.isa.decoder import decode
from repro.isa.encoder import encode
from repro.ml.tokenizer import BOS, EOS, PAD, UNK, FieldTokenizer, HalfwordTokenizer


def small_corpus():
    return Corpus.synthesize(10, seed=1)


class TestHalfwordTokenizer:
    def test_roundtrip_corpus_entries(self):
        corpus = small_corpus()
        tokenizer = HalfwordTokenizer().train(corpus)
        for entry in corpus:
            tokens = tokenizer.encode_words(entry)
            assert tokens[0] == BOS
            assert tokenizer.decode_tokens(tokens) == list(entry)

    def test_two_tokens_per_instruction(self):
        corpus = small_corpus()
        tokenizer = HalfwordTokenizer().train(corpus)
        entry = corpus[0]
        tokens = tokenizer.encode_words(entry, add_bos=False)
        assert len(tokens) == 2 * len(entry)
        assert tokenizer.tokens_per_instruction == 2

    def test_unseen_halfword_becomes_unk_then_invalid_word(self):
        tokenizer = HalfwordTokenizer().train([[0x00000013]])  # just a nop
        tokens = tokenizer.encode_words([0xDEAD0013])
        assert UNK in tokens
        decoded = tokenizer.decode_tokens(tokens)
        # The unknown half decodes to 0x0000 -> the word is malformed, which
        # the disassembler reward then penalises.
        assert decoded[0] != 0xDEAD0013

    def test_vocab_cap_respected(self):
        corpus = small_corpus()
        tokenizer = HalfwordTokenizer(max_vocab=50).train(corpus)
        assert tokenizer.vocab_size <= 50

    def test_eos_append(self):
        tokenizer = HalfwordTokenizer().train([[0x13]])
        tokens = tokenizer.encode_words([0x13], add_eos=True)
        assert tokens[-1] == EOS

    def test_odd_halfword_tail_dropped(self):
        tokenizer = HalfwordTokenizer().train([[0x00000013]])
        tokens = tokenizer.encode_words([0x13], add_bos=False)
        assert tokenizer.decode_tokens(tokens[:-1]) == []

    def test_specials_skipped_in_decode(self):
        tokenizer = HalfwordTokenizer().train([[0x00000013]])
        tokens = [PAD, BOS] + tokenizer.encode_words([0x13], add_bos=False) + [EOS]
        assert tokenizer.decode_tokens(tokens) == [0x13]


class TestFieldTokenizer:
    def test_roundtrip_valid_instructions(self):
        corpus = small_corpus()
        tokenizer = FieldTokenizer().train(corpus)
        words = [
            encode("add", rd=1, rs1=2, rs2=3),
            encode("ld", rd=5, rs1=2, imm=8),
            encode("csrrs", rd=6, csr=0xC00, rs1=0),
            encode("slli", rd=7, rs1=7, shamt=13),
        ]
        tokens = tokenizer.encode_words(words)
        decoded = tokenizer.decode_tokens(tokens)
        assert decoded == words

    def test_four_tokens_per_instruction(self):
        tokenizer = FieldTokenizer().train(small_corpus())
        tokens = tokenizer.encode_words([encode("ecall")], add_bos=False)
        assert len(tokens) == 4

    def test_imm_snaps_to_nearest_known(self):
        tokenizer = FieldTokenizer().train(small_corpus())
        weird = encode("addi", rd=1, rs1=1, imm=1023)  # likely unseen imm
        decoded = tokenizer.decode_tokens(tokenizer.encode_words([weird]))
        instr = decode(decoded[0])
        assert instr is not None and instr.mnemonic == "addi"

    def test_malformed_group_decodes_to_invalid(self):
        tokenizer = FieldTokenizer().train(small_corpus())
        garbage = [UNK, UNK, UNK, UNK]
        assert tokenizer.decode_tokens(garbage) == [0]

    @given(st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=31),
           st.integers(min_value=0, max_value=31))
    @settings(max_examples=20, deadline=None)
    def test_r_format_roundtrip_property(self, rd, rs1, rs2):
        tokenizer = FieldTokenizer().train(small_corpus())
        word = encode("xor", rd=rd, rs1=rs1, rs2=rs2)
        assert tokenizer.decode_tokens(tokenizer.encode_words([word])) == [word]
