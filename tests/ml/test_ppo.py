"""PPO: GAE math, reward placement, clipping, and end-to-end improvement."""

import numpy as np
import pytest

from repro.ml.ppo import PPOConfig, PPOTrainer, RolloutBatch
from repro.ml.tokenizer import HalfwordTokenizer
from repro.ml.transformer import GPT2Config, GPT2LMModel

TINY = GPT2Config(vocab_size=12, max_seq=16, dim=16, n_layers=1, n_heads=2)


class _IdentityTokenizer:
    """Tokens are 'words' directly — lets rewards inspect raw tokens."""

    tokens_per_instruction = 1

    def decode_tokens(self, tokens):
        return list(tokens)


def make_trainer(reward_fn, config=None, seed=0):
    model = GPT2LMModel(TINY, seed=seed)
    return PPOTrainer(model, model.clone(), reward_fn, _IdentityTokenizer(),
                      config=config or PPOConfig(minibatch_size=4), seed=seed)


class TestGae:
    def test_hand_computed_case(self):
        trainer = make_trainer(lambda words: 0.0,
                               PPOConfig(gamma=0.9, lam=0.8))
        rewards = np.array([[1.0, 0.0, 2.0]], dtype=np.float32)
        values = np.array([[0.5, 0.4, 0.3]], dtype=np.float32)
        advantages, returns = trainer._gae(rewards, values)
        # delta_2 = 2 - 0.3 = 1.7; adv_2 = 1.7
        # delta_1 = 0 + .9*.3 - .4 = -0.13; adv_1 = -0.13 + .72*1.7 = 1.094
        # delta_0 = 1 + .9*.4 - .5 = 0.86; adv_0 = 0.86 + .72*1.094 = 1.64768
        assert np.allclose(advantages, [[1.64768, 1.094, 1.7]], atol=1e-5)
        assert np.allclose(returns, advantages + values)

    def test_gamma_lam_one_is_reward_to_go(self):
        trainer = make_trainer(lambda words: 0.0,
                               PPOConfig(gamma=1.0, lam=1.0))
        rewards = np.array([[1.0, 1.0, 1.0]], dtype=np.float32)
        values = np.zeros((1, 3), dtype=np.float32)
        advantages, _ = trainer._gae(rewards, values)
        assert np.allclose(advantages, [[3.0, 2.0, 1.0]])


class TestTokenRewards:
    def test_kl_penalty_and_terminal_reward(self):
        trainer = make_trainer(lambda words: 0.0, PPOConfig(kl_coef=0.5))
        batch = RolloutBatch(
            tokens=np.zeros((1, 4), dtype=np.int64),
            prompt_len=1,
            old_logprobs=np.array([[-1.0, -1.0, -1.0]], dtype=np.float32),
            ref_logprobs=np.array([[-1.0, -2.0, -1.0]], dtype=np.float32),
            values=np.zeros((1, 3), dtype=np.float32),
            seq_rewards=np.array([4.0], dtype=np.float32),
        )
        rewards = trainer._token_rewards(batch)
        # KL per token = old - ref = [0, 1, 0]; penalty = -0.5 * KL.
        assert np.allclose(rewards, [[0.0, -0.5, 4.0]])


class TestRollout:
    def test_shapes(self):
        trainer = make_trainer(lambda words: 1.0)
        prompts = np.ones((4, 3), dtype=np.int64)
        batch = trainer.rollout(prompts, 5)
        assert batch.tokens.shape == (4, 8)
        assert batch.old_logprobs.shape == (4, 5)
        assert batch.ref_logprobs.shape == (4, 5)
        assert batch.values.shape == (4, 5)
        assert batch.response_len == 5

    def test_reward_fn_receives_response_only(self):
        seen = []

        def reward(words):
            seen.append(list(words))
            return 0.0

        trainer = make_trainer(reward)
        trainer.rollout(np.full((2, 3), 7, dtype=np.int64), 4)
        assert all(len(words) == 4 for words in seen)

    def test_fresh_model_has_zero_kl(self):
        """Before any update, policy == reference, so KL must be ~0."""
        trainer = make_trainer(lambda words: 0.0)
        batch = trainer.rollout(np.zeros((3, 2), dtype=np.int64), 4)
        kl = batch.old_logprobs - batch.ref_logprobs
        assert np.allclose(kl, 0.0, atol=1e-5)


class TestLearning:
    def test_ppo_increases_reward_on_token_preference_task(self):
        """Reward emitting token 3: PPO must raise its frequency."""
        target = 3

        def reward(words):
            return float(sum(1 for w in words if w == target))

        trainer = make_trainer(
            reward,
            PPOConfig(lr=3e-3, inner_epochs=2, minibatch_size=8,
                      kl_coef=0.01, entropy_coef=0.0, top_k=None),
            seed=2,
        )
        prompts = np.zeros((16, 2), dtype=np.int64)
        first = trainer.step(prompts, 6).mean_reward
        for _ in range(8):
            last = trainer.step(prompts, 6)
        assert last.mean_reward > first + 0.5, trainer.history.mean_rewards

    def test_stats_populated(self):
        trainer = make_trainer(lambda words: 1.0)
        stats = trainer.step(np.zeros((4, 2), dtype=np.int64), 3)
        assert stats.mean_reward == 1.0
        assert np.isfinite(stats.total_loss)
        assert np.isfinite(stats.policy_loss)
        assert np.isfinite(stats.value_loss)
        assert stats.entropy > 0
        assert len(trainer.history.steps) == 1

    def test_kl_grows_after_updates(self):
        """After aggressive updates the policy drifts from the reference."""
        trainer = make_trainer(
            lambda words: float(words[0] == 1),
            PPOConfig(lr=5e-3, kl_coef=0.0, minibatch_size=8, top_k=None),
            seed=4,
        )
        prompts = np.zeros((8, 2), dtype=np.int64)
        for _ in range(5):
            stats = trainer.step(prompts, 4)
        assert abs(stats.mean_kl) > 1e-4
