"""Sampler filtering/determinism and Adam convergence."""

import numpy as np

from repro.ml.optim import Adam
from repro.ml.sampling import Sampler, SamplerConfig
from repro.ml.tensor import Tensor
from repro.ml.transformer import GPT2Config, GPT2LMModel

TINY = GPT2Config(vocab_size=11, max_seq=16, dim=16, n_layers=1, n_heads=2)


class _FixedModel:
    """Stub exposing a fixed next-token distribution, for filter tests."""

    def __init__(self, probs):
        self.probs = np.asarray(probs, dtype=np.float32)
        self.config = TINY

    def next_token_distribution(self, tokens):
        return np.tile(self.probs, (tokens.shape[0], 1))


class TestFiltering:
    def test_top_k_keeps_k_tokens(self):
        model = _FixedModel([0.4, 0.3, 0.2, 0.05, 0.05])
        sampler = Sampler(model, SamplerConfig(top_k=2), seed=0)
        filtered = sampler._filter_distribution(model.next_token_distribution(
            np.zeros((1, 1), dtype=np.int64)))
        assert (filtered > 0).sum() == 2
        assert np.allclose(filtered.sum(), 1.0)

    def test_top_p_nucleus(self):
        model = _FixedModel([0.5, 0.3, 0.1, 0.05, 0.05])
        sampler = Sampler(model, SamplerConfig(top_p=0.75), seed=0)
        filtered = sampler._filter_distribution(model.next_token_distribution(
            np.zeros((1, 1), dtype=np.int64)))
        # 0.5 + 0.3 = 0.8 >= 0.75 -> keep exactly the top two.
        assert (filtered > 0).sum() == 2

    def test_top_p_always_keeps_one(self):
        model = _FixedModel([0.9, 0.1, 0.0, 0.0, 0.0])
        sampler = Sampler(model, SamplerConfig(top_p=0.01), seed=0)
        filtered = sampler._filter_distribution(model.next_token_distribution(
            np.zeros((1, 1), dtype=np.int64)))
        assert (filtered > 0).sum() >= 1

    def test_forbidden_tokens_never_sampled(self):
        model = _FixedModel([0.5, 0.3, 0.1, 0.05, 0.05])
        sampler = Sampler(model, SamplerConfig(forbidden_tokens=(0, 1)), seed=0)
        out = sampler.generate(np.zeros((4, 1), dtype=np.int64), 20)
        assert not np.isin(out[:, 1:], [0, 1]).any()

    def test_forbidden_tokens_survive_dead_row_fallback(self):
        # All mass on forbidden tokens: the fallback must stay masked.
        model = _FixedModel([0.6, 0.4, 0.0, 0.0, 0.0])
        sampler = Sampler(model, SamplerConfig(forbidden_tokens=(0, 1)), seed=0)
        filtered = sampler._filter_distribution(model.next_token_distribution(
            np.zeros((2, 1), dtype=np.int64)))
        assert np.all(filtered[:, :2] == 0)
        assert np.allclose(filtered.sum(axis=-1), 1.0)


class TestGeneration:
    def test_shapes_and_prompt_preserved(self):
        model = GPT2LMModel(TINY, seed=0)
        sampler = Sampler(model, seed=0)
        prompts = np.ones((3, 4), dtype=np.int64)
        out = sampler.generate(prompts, 5)
        assert out.shape == (3, 9)
        assert np.array_equal(out[:, :4], prompts)

    def test_deterministic_with_seed(self):
        model = GPT2LMModel(TINY, seed=0)
        a = Sampler(model, seed=9).generate(np.zeros((2, 3), dtype=np.int64), 6)
        b = Sampler(model, seed=9).generate(np.zeros((2, 3), dtype=np.int64), 6)
        assert np.array_equal(a, b)

    def test_low_temperature_is_greedy(self):
        model = GPT2LMModel(TINY, seed=0)
        cold = Sampler(model, SamplerConfig(temperature=1e-4), seed=1)
        out1 = cold.generate(np.zeros((1, 2), dtype=np.int64), 4)
        out2 = Sampler(model, SamplerConfig(temperature=1e-4), seed=2).generate(
            np.zeros((1, 2), dtype=np.int64), 4)
        assert np.array_equal(out1, out2)  # greedy regardless of rng

    def test_rejects_1d_prompts(self):
        import pytest

        sampler = Sampler(GPT2LMModel(TINY), seed=0)
        with pytest.raises(ValueError):
            sampler.generate(np.zeros(3, dtype=np.int64), 2)


class TestAdam:
    def test_converges_on_quadratic(self):
        x = Tensor.param(np.array([5.0, -3.0], dtype=np.float32))
        optimizer = Adam([x], lr=0.1)
        for _ in range(200):
            loss = (x * x).sum()
            loss.backward()
            optimizer.step()
        assert np.abs(x.data).max() < 0.05

    def test_step_returns_grad_norm(self):
        x = Tensor.param(np.array([3.0, 4.0], dtype=np.float32))
        optimizer = Adam([x], lr=0.1, grad_clip=None)
        (x * 1.0).sum().backward()
        assert abs(optimizer.step() - np.sqrt(2.0)) < 1e-5

    def test_grad_clip_limits_update(self):
        x = Tensor.param(np.array([0.0], dtype=np.float32))
        optimizer = Adam([x], lr=1.0, grad_clip=1e-6)
        (x * 1e6).sum().backward()
        norm = optimizer.step()
        assert norm > 1.0          # pre-clip norm reported
        assert abs(x.data[0]) <= 1.1  # but the step stayed bounded

    def test_zero_grad(self):
        x = Tensor.param(np.array([1.0], dtype=np.float32))
        optimizer = Adam([x])
        (x * 2.0).sum().backward()
        optimizer.zero_grad()
        assert x.grad is None

    def test_skips_params_without_grad(self):
        x = Tensor.param(np.array([1.0], dtype=np.float32))
        y = Tensor.param(np.array([1.0], dtype=np.float32))
        optimizer = Adam([x, y], lr=0.1)
        (x * 1.0).sum().backward()
        optimizer.step()
        assert y.data[0] == 1.0
