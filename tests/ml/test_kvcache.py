"""KV-cached decoding: parity with the uncached path, shapes, limits."""

import numpy as np
import pytest

from repro.ml.attention import causal_mask, extended_causal_mask
from repro.ml.kvcache import KVCache
from repro.ml.sampling import Sampler, SamplerConfig
from repro.ml.transformer import GPT2Config, GPT2LMModel

SMALL = GPT2Config(vocab_size=31, max_seq=24, dim=16, n_layers=2, n_heads=2)
UNTIED = GPT2Config(vocab_size=31, max_seq=24, dim=16, n_layers=2, n_heads=2,
                    tie_embeddings=False)


def _prompts(batch=3, length=4, vocab=SMALL.vocab_size, seed=11):
    rng = np.random.default_rng(seed)
    return rng.integers(0, vocab, size=(batch, length), dtype=np.int64)


class TestDecodeParity:
    """Cached and uncached generation must agree token for token."""

    @pytest.mark.parametrize("config", [
        SamplerConfig(),
        SamplerConfig(temperature=0.7, top_k=8),
        SamplerConfig(top_p=0.9, forbidden_tokens=(0, 1, 2)),
    ])
    def test_tokens_identical_under_fixed_seed(self, config):
        model = GPT2LMModel(SMALL, seed=0)
        prompts = _prompts()
        cached = Sampler(model, config, seed=5).generate(prompts, 18)
        uncached = Sampler(model, config, seed=5,
                           use_cache=False).generate(prompts, 18)
        assert np.array_equal(cached, uncached)

    def test_tokens_identical_with_untied_head(self):
        model = GPT2LMModel(UNTIED, seed=2)
        prompts = _prompts(seed=3)
        cached = Sampler(model, seed=8).generate(prompts, 16)
        uncached = Sampler(model, seed=8, use_cache=False).generate(prompts, 16)
        assert np.array_equal(cached, uncached)

    def test_prefill_probs_match_uncached_forward(self):
        model = GPT2LMModel(SMALL, seed=1)
        prompts = _prompts()
        probs, _ = model.prefill(prompts)
        reference = model.next_token_distribution(prompts)
        assert probs.shape == reference.shape
        np.testing.assert_allclose(probs, reference, atol=1e-6)

    def test_decode_step_matches_uncached_forward(self):
        model = GPT2LMModel(SMALL, seed=1)
        tokens = _prompts()
        probs, cache = model.prefill(tokens)
        for _ in range(5):
            nxt = np.argmax(probs, axis=-1)
            tokens = np.concatenate([tokens, nxt[:, None]], axis=1)
            probs = model.decode_step(nxt[:, None], cache)
            reference = model.next_token_distribution(tokens)
            np.testing.assert_allclose(probs, reference, atol=1e-6)

    def test_multi_token_decode_chunk_matches(self):
        # decode_step with several new tokens exercises the rectangular
        # extended causal mask (past > 0, t_new > 1).
        model = GPT2LMModel(SMALL, seed=4)
        tokens = _prompts(batch=2, length=6, seed=7)
        _, cache = model.prefill(tokens[:, :3])
        chunk_probs = model.decode_step(tokens[:, 3:], cache)
        reference = model.next_token_distribution(tokens)
        np.testing.assert_allclose(chunk_probs, reference, atol=1e-6)


class TestKVCacheMechanics:
    def test_prefill_shapes_and_length(self):
        model = GPT2LMModel(SMALL, seed=0)
        _, cache = model.prefill(_prompts(batch=3, length=4))
        assert cache.n_layers == SMALL.n_layers
        assert cache.batch == 3
        assert cache.length == 4
        assert cache.remaining == SMALL.max_seq - 4
        head_dim = SMALL.dim // SMALL.n_heads
        for layer in range(cache.n_layers):
            assert cache.keys(layer).shape == (3, SMALL.n_heads, 4, head_dim)
            assert cache.values(layer).shape == (3, SMALL.n_heads, 4, head_dim)

    def test_decode_advances_length_by_one(self):
        model = GPT2LMModel(SMALL, seed=0)
        probs, cache = model.prefill(_prompts())
        model.decode_step(np.argmax(probs, axis=-1)[:, None], cache)
        assert cache.length == 5

    def test_append_rejects_overflow_at_max_seq(self):
        cache = KVCache(n_layers=1, batch=2, n_heads=2, max_seq=4, head_dim=3)
        rows = np.zeros((2, 2, 4, 3), dtype=np.float32)
        cache.append(0, rows, rows)
        cache.advance(4)
        assert cache.remaining == 0
        one = np.zeros((2, 2, 1, 3), dtype=np.float32)
        with pytest.raises(ValueError, match="overflow"):
            cache.append(0, one, one)

    def test_append_rejects_shape_mismatch(self):
        cache = KVCache(n_layers=1, batch=2, n_heads=2, max_seq=4, head_dim=3)
        good = np.zeros((2, 2, 1, 3), dtype=np.float32)
        bad = np.zeros((2, 1, 1, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            cache.append(0, bad, bad)
        with pytest.raises(ValueError):
            cache.append(0, good, bad)

    def test_advance_rejects_overflow(self):
        cache = KVCache(n_layers=1, batch=1, n_heads=1, max_seq=2, head_dim=2)
        with pytest.raises(ValueError, match="overflow"):
            cache.advance(3)

    def test_decode_step_rejects_batch_mismatch(self):
        model = GPT2LMModel(SMALL, seed=0)
        _, cache = model.prefill(_prompts(batch=3))
        with pytest.raises(ValueError, match="batch"):
            model.decode_step(np.zeros((2, 1), dtype=np.int64), cache)

    def test_decode_past_max_seq_raises(self):
        model = GPT2LMModel(SMALL, seed=0)
        _, cache = model.prefill(
            _prompts(batch=1, length=SMALL.max_seq)
        )
        with pytest.raises(ValueError, match="max_seq"):
            model.decode_step(np.zeros((1, 1), dtype=np.int64), cache)


class TestGenerateLimits:
    def test_generate_rejects_sequences_exceeding_max_seq(self):
        # The last sampled token is never fed back, so the hard limit is
        # prompt + n_new - 1 <= max_seq (what the uncached path enforces
        # implicitly); one past that must raise up front.
        model = GPT2LMModel(SMALL, seed=0)
        sampler = Sampler(model, seed=0)
        prompts = _prompts(batch=2, length=4)
        with pytest.raises(ValueError, match="max_seq"):
            sampler.generate(prompts, SMALL.max_seq - 4 + 2)

    def test_generate_fills_exactly_to_max_seq(self):
        model = GPT2LMModel(SMALL, seed=0)
        out = Sampler(model, seed=0).generate(
            _prompts(batch=2, length=4), SMALL.max_seq - 4
        )
        assert out.shape == (2, SMALL.max_seq)

    def test_generate_one_past_max_seq_matches_uncached(self):
        # prompt + n_new == max_seq + 1 worked on the uncached path (the
        # final token is appended but never fed back); the cached path must
        # accept it too, with identical output.
        model = GPT2LMModel(SMALL, seed=0)
        prompts = _prompts(batch=2, length=4)
        n_new = SMALL.max_seq - 4 + 1
        cached = Sampler(model, seed=3).generate(prompts, n_new)
        uncached = Sampler(model, seed=3, use_cache=False).generate(
            prompts, n_new
        )
        assert cached.shape == (2, SMALL.max_seq + 1)
        assert np.array_equal(cached, uncached)

    def test_generate_zero_new_tokens_returns_prompt(self):
        model = GPT2LMModel(SMALL, seed=0)
        prompts = _prompts()
        out = Sampler(model, seed=0).generate(prompts, 0)
        assert np.array_equal(out, prompts)

    def test_generate_empty_batch(self):
        model = GPT2LMModel(SMALL, seed=0)
        out = Sampler(model, seed=0).generate(
            np.zeros((0, 4), dtype=np.int64), 3
        )
        assert out.shape == (0, 7)


class TestMaskMemoization:
    def test_causal_mask_is_cached_and_readonly(self):
        a = causal_mask(7)
        assert a is causal_mask(7)
        assert not a.flags.writeable
        assert a[0, 1] < -1e8 and a[1, 0] == 0.0

    def test_extended_mask_zero_past_is_causal_mask(self):
        assert extended_causal_mask(5, 0) is causal_mask(5)

    def test_extended_mask_rectangular(self):
        mask = extended_causal_mask(2, 3)
        assert mask.shape == (2, 5)
        assert (mask[:, :3] == 0.0).all()     # past: fully visible
        assert mask[0, 4] < -1e8              # future within the new block
        assert mask[1, 4] == 0.0
        assert not mask.flags.writeable
