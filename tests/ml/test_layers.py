"""NN layers: shapes, parameter collection, state round-trips."""

import numpy as np

from repro.ml.layers import MLP, Embedding, LayerNorm, Linear, Parameterized
from repro.ml.tensor import Tensor

RNG = np.random.default_rng(0)


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 6, RNG)
        out = layer(Tensor(np.zeros((3, 4), dtype=np.float32)))
        assert out.shape == (3, 6)

    def test_parameters(self):
        layer = Linear(4, 6, RNG)
        params = layer.parameters()
        assert len(params) == 2
        assert layer.num_parameters() == 4 * 6 + 6

    def test_bias_applied(self):
        layer = Linear(2, 2, RNG)
        layer.bias.data[:] = 5.0
        layer.weight.data[:] = 0.0
        out = layer(Tensor(np.ones((1, 2), dtype=np.float32)))
        assert np.allclose(out.data, 5.0)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, RNG)
        out = emb(np.array([[1, 2], [3, 1]]))
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.data[0, 0], emb.weight.data[1])
        assert np.allclose(out.data[0, 0], out.data[1, 1])

    def test_gradient_scatters(self):
        emb = Embedding(5, 3, RNG)
        out = emb(np.array([[0, 0, 1]]))
        out.sum().backward()
        assert np.allclose(emb.weight.grad[0], 2.0)  # used twice
        assert np.allclose(emb.weight.grad[1], 1.0)
        assert np.allclose(emb.weight.grad[2], 0.0)


class TestLayerNorm:
    def test_normalises(self):
        ln = LayerNorm(8)
        x = Tensor(RNG.normal(5.0, 3.0, size=(4, 8)).astype(np.float32))
        out = ln(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)


class TestMLP:
    def test_shapes_and_params(self):
        mlp = MLP(8, 32, RNG)
        out = mlp(Tensor(np.zeros((2, 8), dtype=np.float32)))
        assert out.shape == (2, 8)
        assert len(mlp.parameters()) == 4


class TestParameterized:
    def test_nested_collection_dedupes(self):
        class Net(Parameterized):
            def __init__(self):
                self.a = Linear(2, 2, RNG)
                self.blocks = [LayerNorm(2), LayerNorm(2)]
                self.alias = self.a  # shared reference must not double-count

        net = Net()
        assert len(net.parameters()) == 2 + 2 + 2

    def test_state_roundtrip(self):
        a = Linear(3, 3, RNG)
        b = Linear(3, 3, RNG)
        b.load_state_arrays(a.state_arrays())
        assert np.allclose(a.weight.data, b.weight.data)
        assert np.allclose(a.bias.data, b.bias.data)

    def test_state_shape_mismatch_rejected(self):
        import pytest

        a = Linear(3, 3, RNG)
        b = Linear(3, 4, RNG)
        with pytest.raises(ValueError):
            b.load_state_arrays(a.state_arrays())
