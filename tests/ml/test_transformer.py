"""GPT-2 model: losses, overfitting sanity, cloning, persistence."""

import numpy as np
import pytest

from repro.ml.optim import Adam
from repro.ml.transformer import GPT2Config, GPT2LMModel

TINY = GPT2Config(vocab_size=17, max_seq=12, dim=16, n_layers=1, n_heads=2)


class TestForward:
    def test_logits_shape(self):
        model = GPT2LMModel(TINY)
        logits = model.logits(np.zeros((2, 5), dtype=np.int64))
        assert logits.shape == (2, 5, 17)

    def test_values_shape(self):
        model = GPT2LMModel(TINY)
        _, values = model.logits_and_values(np.zeros((2, 5), dtype=np.int64))
        assert values.shape == (2, 5)

    def test_sequence_too_long_rejected(self):
        model = GPT2LMModel(TINY)
        with pytest.raises(ValueError):
            model.logits(np.zeros((1, 13), dtype=np.int64))

    def test_1d_tokens_rejected(self):
        model = GPT2LMModel(TINY)
        with pytest.raises(ValueError):
            model.logits(np.zeros(5, dtype=np.int64))

    def test_untied_head(self):
        config = GPT2Config(vocab_size=17, max_seq=12, dim=16, n_layers=1,
                            n_heads=2, tie_embeddings=False)
        model = GPT2LMModel(config)
        assert model.logits(np.zeros((1, 4), dtype=np.int64)).shape == (1, 4, 17)

    def test_next_token_distribution_sums_to_one(self):
        model = GPT2LMModel(TINY)
        probs = model.next_token_distribution(np.zeros((3, 4), dtype=np.int64))
        assert probs.shape == (3, 17)
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-5)


class TestTraining:
    def test_overfits_repeating_pattern(self):
        """The model must be able to memorise a trivial sequence — the
        canonical smoke test for a working training stack."""
        model = GPT2LMModel(TINY, seed=1)
        data = np.tile(np.arange(6), 4)[None, :12].astype(np.int64)
        optimizer = Adam(model.parameters(), lr=3e-3)
        first = model.lm_loss(data).item()
        for _ in range(60):
            loss = model.lm_loss(data)
            loss.backward()
            optimizer.step()
        assert loss.item() < first * 0.3

    def test_loss_is_positive_scalar(self):
        model = GPT2LMModel(TINY)
        loss = model.lm_loss(np.zeros((2, 6), dtype=np.int64))
        assert loss.data.size == 1
        assert loss.item() > 0


class TestCloneAndPersistence:
    def test_clone_equal_but_independent(self):
        model = GPT2LMModel(TINY, seed=3)
        twin = model.clone()
        tokens = np.zeros((1, 4), dtype=np.int64)
        assert np.allclose(model.logits(tokens).data, twin.logits(tokens).data)
        model.parameters()[0].data += 1.0
        assert not np.allclose(
            model.logits(tokens).data, twin.logits(tokens).data
        )

    def test_save_load_roundtrip(self, tmp_path):
        model = GPT2LMModel(TINY, seed=5)
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = GPT2LMModel.load(path)
        tokens = np.arange(8, dtype=np.int64)[None, :]
        assert loaded.config == model.config
        assert np.allclose(model.logits(tokens).data, loaded.logits(tokens).data)
