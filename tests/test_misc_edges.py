"""Edge-case coverage for small utilities across packages."""

import numpy as np

from repro.fuzzing.input import TestInput as FuzzInput
from repro.fuzzing.simclock import SimClock
from repro.golden.trace import CommitTrace, MemOp, TraceEntry
from repro.ml.tensor import Tensor
from repro.rtl.coverage import ConditionCoverage
from repro.soc.rocket.uncore import (
    DEBUG_CONDITIONS,
    IRQ_CONDITIONS,
    DebugUnit,
    InterruptController,
)


class TestFuzzInput:
    def test_ids_are_unique_and_increasing(self):
        a = FuzzInput([1])
        b = FuzzInput([2])
        assert b.input_id > a.input_id

    def test_provenance_fields(self):
        parent = FuzzInput([1], source="seed")
        child = FuzzInput([2], source="mutation", parent=parent.input_id)
        assert child.parent == parent.input_id
        assert len(child) == 1
        assert list(child) == [2]


class TestSimClockCustom:
    def test_custom_cost_model(self):
        clock = SimClock(elab_seconds=100.0, per_test_seconds=2.0)
        clock.charge_tests(5)
        assert clock.seconds == 110.0
        assert clock.minutes == 110.0 / 60.0


class TestUncore:
    def test_debug_unit_declares_but_never_records(self):
        cov = ConditionCoverage()
        DebugUnit("dm", cov)
        cov.freeze()
        assert cov.num_conditions == len(DEBUG_CONDITIONS)
        assert cov.run_hits == set()

    def test_irq_poll_hits_only_false_arms(self):
        cov = ConditionCoverage()
        irq = InterruptController("clint", cov)
        cov.freeze()
        irq.poll()
        assert len(cov.run_hits) == len(IRQ_CONDITIONS)
        assert all(arm % 2 == 0 for arm in cov.run_hits)  # false arms only


class TestTraceRendering:
    def test_memop_str(self):
        assert str(MemOp(0x100, 8, True, 0x2A)) == "ST[0x100,8]=0x2a"
        assert str(MemOp(0x100, 4, False, 1)) == "LD[0x100,4]=0x1"

    def test_entry_summary_fields(self):
        entry = TraceEntry(pc=0x80000000, instr=0x13, priv=3, rd=5,
                           rd_value=7, csr_write=(0x300, 1))
        text = entry.summary()
        assert "x5<-0x7" in text
        assert "csr[0x300]<-0x1" in text

    def test_trap_entry_summary(self):
        entry = TraceEntry(pc=0, instr=0, priv=3, trap_cause=5, trap_tval=0x10)
        assert "trap=5" in entry.summary()
        assert entry.trapped

    def test_trace_render_limit(self):
        trace = CommitTrace()
        for i in range(10):
            trace.append(TraceEntry(pc=4 * i, instr=0x13, priv=3))
        text = trace.render(limit=3)
        assert "(7 more)" in text


class TestTensorOperatorEdges:
    def test_rsub_rdiv(self):
        t = Tensor.param(np.array([2.0], dtype=np.float32))
        assert float((10.0 - t).data[0]) == 8.0
        assert float((10.0 / t).data[0]) == 5.0

    def test_default_transpose_reverses(self):
        t = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
        assert t.transpose().shape == (4, 3, 2)

    def test_zeros_constructor(self):
        t = Tensor.zeros(2, 3)
        assert t.shape == (2, 3)
        assert not t.requires_grad

    def test_repr(self):
        assert "shape=(2,)" in repr(Tensor(np.zeros(2, dtype=np.float32)))


class TestCommitTraceCounters:
    def test_trap_count(self):
        trace = CommitTrace()
        trace.append(TraceEntry(pc=0, instr=0, priv=3, trap_cause=2))
        trace.append(TraceEntry(pc=4, instr=0x13, priv=3))
        assert trace.trap_count == 1
        assert trace.instret == 2
        assert trace[0].trapped
