"""Bug classification, cross-campaign dedup/attribution, report formatting."""

from repro.analysis.bugs import (
    KNOWN_BUGS,
    classify_mismatch,
    classify_mismatches,
    detected_bugs,
)
from repro.analysis.fleet import (
    dedupe_mismatches,
    fleet_bug_rows,
    fleet_bug_table,
    fleet_detected_bugs,
)
from repro.analysis.fleet import fleet_health_table, fleet_stats_table
from repro.analysis.report import format_table, store_report
from repro.fuzzing.campaign import CampaignResult
from repro.fuzzing.fleet import FleetHealth, FleetStats
from repro.fuzzing.mismatch import Mismatch
from repro.obs.store import StoreAggregates


def mismatch(kind, *signature_tail):
    return Mismatch(kind=kind, index=0, pc=0, detail="",
                    signature=(kind, *signature_tail))


class TestClassification:
    def test_instr_word_is_bug1(self):
        assert classify_mismatch(mismatch("instr_word", "addi")).bug_id == "BUG1"

    def test_pc_divergence_attributed_to_bug1(self):
        assert classify_mismatch(
            mismatch("pc_divergence", "addi")).bug_id == "BUG1"

    def test_muldiv_rd_missing_is_bug2(self):
        match = classify_mismatch(mismatch("rd_missing", "mul"))
        assert match.bug_id == "BUG2"
        assert match.cwe == "CWE-440"

    def test_non_muldiv_rd_missing_unexplained(self):
        assert classify_mismatch(mismatch("rd_missing", "add")) is None

    def test_amo_x0_is_finding2(self):
        assert classify_mismatch(
            mismatch("rd_spurious_x0", "amoor.d")).bug_id == "FINDING2"

    def test_jalr_x0_is_finding3(self):
        assert classify_mismatch(
            mismatch("rd_spurious_x0", "jalr")).bug_id == "FINDING3"

    def test_trap_priority_is_finding1(self):
        assert classify_mismatch(
            mismatch("trap_cause", "ld", 5, 4)).bug_id == "FINDING1"
        assert classify_mismatch(
            mismatch("trap_cause", "sd", 7, 6)).bug_id == "FINDING1"

    def test_other_trap_mismatch_unexplained(self):
        assert classify_mismatch(mismatch("trap_cause", "ld", 2, 8)) is None

    def test_rd_value_unexplained(self):
        assert classify_mismatch(mismatch("rd_value", "add")) is None


class TestGrouping:
    def test_classify_mismatches_groups(self):
        groups = classify_mismatches([
            mismatch("instr_word", "addi"),
            mismatch("rd_missing", "mul"),
            mismatch("rd_value", "add"),
        ])
        assert set(groups) == {"BUG1", "BUG2", "UNEXPLAINED"}

    def test_detected_bugs(self):
        bugs = detected_bugs([
            mismatch("instr_word", "addi"),
            mismatch("rd_spurious_x0", "jalr"),
        ])
        assert bugs == {"BUG1", "FINDING3"}

    def test_known_bug_registry_complete(self):
        assert set(KNOWN_BUGS) == {
            "BUG1", "BUG2", "FINDING1", "FINDING2", "FINDING3"
        }


def campaign(name, *mismatches):
    return CampaignResult(name=name, mismatches=list(mismatches))


class TestFleetDedup:
    """Satellite pin: identical signatures found by different campaigns
    count once in the E-BUGS table, with per-campaign attribution kept."""

    def test_identical_signatures_count_once(self):
        shared = mismatch("rd_missing", "mul")
        deduped = dedupe_mismatches([
            campaign("chatfuzz", shared, mismatch("instr_word", "addi")),
            campaign("thehuzz", shared),
        ])
        assert len(deduped) == 2
        assert deduped[shared.signature].campaigns == ("chatfuzz", "thehuzz")
        assert deduped[("instr_word", "addi")].campaigns == ("chatfuzz",)

    def test_same_campaign_listed_once(self):
        # Two distinct Mismatch objects, same signature, same campaign.
        deduped = dedupe_mismatches([
            campaign("solo", mismatch("rd_missing", "mul"),
                     Mismatch("rd_missing", 3, 8, "later hit",
                              ("rd_missing", "mul"))),
        ])
        assert deduped[("rd_missing", "mul")].campaigns == ("solo",)

    def test_fleet_detected_bugs_unions_campaigns(self):
        results = [
            campaign("a", mismatch("instr_word", "addi")),
            campaign("b", mismatch("rd_spurious_x0", "jalr")),
        ]
        assert fleet_detected_bugs(results) == {"BUG1", "FINDING3"}

    def test_bug_rows_dedupe_and_attribute(self):
        shared = mismatch("rd_missing", "mul")
        results = [
            campaign("chatfuzz", shared, mismatch("rd_missing", "div")),
            campaign("thehuzz", shared),
            campaign("random", mismatch("rd_value", "add")),
        ]
        rows = {row[0]: row for row in fleet_bug_rows(results)}
        # BUG2: 'mul' signature counted once despite two finders.
        assert rows["BUG2"][2] == "FOUND"
        assert rows["BUG2"][3] == "2"  # mul + div signatures
        assert rows["BUG2"][4] == "chatfuzz, thehuzz"
        assert rows["BUG1"][2] == "not found"
        assert rows["UNEXPLAINED"][3] == "1"
        assert rows["UNEXPLAINED"][4] == "random"

    def test_bug_table_renders(self):
        table = fleet_bug_table([campaign("a", mismatch("instr_word", "x"))])
        assert "BUG1" in table and "FOUND" in table
        assert table.splitlines()[0].startswith("E-BUGS")


class TestReport:
    def test_format_table_aligns(self):
        table = format_table(["fuzzer", "cov%"],
                             [["chatfuzz", "74.96"], ["thehuzz", "67.4"]],
                             title="E-1P8K")
        lines = table.splitlines()
        assert lines[0] == "E-1P8K"
        assert "chatfuzz" in lines[3]
        assert len(lines[1]) == len(lines[2])  # header matches separator

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table


class TestDegenerateInputs:
    """Regression pins: renderers and the classifier must survive the
    degenerate shapes a partially-written store (or a foreign writer) can
    legitimately hand them — ragged rows and empty signatures used to
    raise ``IndexError``."""

    def test_format_table_rows_longer_than_headers(self):
        table = format_table(["a", "b"], [["1", "2", "3", "4"]])
        lines = table.splitlines()
        assert "3" in lines[-1] and "4" in lines[-1]
        assert len(lines[0]) == len(lines[1])  # separator spans extras

    def test_format_table_rows_shorter_than_headers(self):
        table = format_table(["a", "b", "c"], [["1"], ["1", "2"]])
        assert "1" in table  # short rows pad, never crash

    def test_classify_empty_signature_is_unexplained(self):
        degenerate = Mismatch(kind="rd_value", index=0, pc=0, detail="",
                              signature=())
        assert classify_mismatch(degenerate) is None

    def test_bug_table_tolerates_empty_signature(self):
        table = fleet_bug_table([campaign(
            "a",
            Mismatch(kind="", index=0, pc=0, detail="", signature=()),
        )])
        assert "UNEXPLAINED" in table

    def test_no_campaigns(self):
        table = fleet_bug_table([])
        assert "not found" in table  # every known bug rendered undetected

    def test_empty_stats_and_health_tables(self):
        assert "run" in fleet_stats_table({})
        assert "tests/sec" in fleet_stats_table({"empty": FleetStats()})
        assert "event" in fleet_health_table(FleetHealth())


class TestStoreReport:
    def aggregates(self):
        return StoreAggregates(
            arms=[{"name": "thehuzz-0", "arm": 0, "tests": 24,
                   "coverage_percent": 61.0, "sim_hours": 0.2,
                   "busy_seconds": 1.5, "slices": 3, "quarantined": False,
                   "curve": [[8, 0.1, 40.0], [24, 0.2, 61.0]],
                   "phases": {"generation_seconds": 0.1,
                              "execution_seconds": 1.2,
                              "fold_seconds": 0.2}}],
            union_percent=61.0, universe=326, total_tests=24,
            busy_seconds=1.5, wall_seconds=2.0, worker_slots=1,
            utilisation=0.75, mode="streaming", runs=1,
            health={"retries": 1, "timeouts": 0, "pool_rebuilds": 0,
                    "quarantined": []},
            phases={"generation_seconds": 0.1, "execution_seconds": 1.2,
                    "fold_seconds": 0.2},
            mismatches=[{"kind": "rd_missing",
                         "signature": ["rd_missing", "mul"], "pc": 64,
                         "detail": "golden writes x3", "campaigns":
                         ["thehuzz-0"]}],
            events=42, last_event_t=0.0,
        )

    def test_renders_every_section(self):
        report = store_report(self.aggregates())
        assert "union coverage: 61.00% of 326" in report
        assert "Arms" in report and "thehuzz-0" in report
        assert "Per-phase wall time" in report and "execution" in report
        assert "Fleet health" in report
        assert "E-BUGS (1 unique signatures)" in report
        assert "BUG2" in report  # muldiv rd_missing classified

    def test_accepts_api_payload_dict(self):
        # The dashboard's /api/summary JSON (as_dict form) renders too —
        # including its list-of-lists signatures.
        assert "BUG2" in store_report(self.aggregates().as_dict())

    def test_empty_store_renders(self):
        report = store_report(StoreAggregates())
        assert "runs: 0" in report
        assert "E-BUGS (0 unique signatures)" in report
