"""Bug classification, cross-campaign dedup/attribution, report formatting."""

from repro.analysis.bugs import (
    KNOWN_BUGS,
    classify_mismatch,
    classify_mismatches,
    detected_bugs,
)
from repro.analysis.fleet import (
    dedupe_mismatches,
    fleet_bug_rows,
    fleet_bug_table,
    fleet_detected_bugs,
)
from repro.analysis.report import format_table
from repro.fuzzing.campaign import CampaignResult
from repro.fuzzing.mismatch import Mismatch


def mismatch(kind, *signature_tail):
    return Mismatch(kind=kind, index=0, pc=0, detail="",
                    signature=(kind, *signature_tail))


class TestClassification:
    def test_instr_word_is_bug1(self):
        assert classify_mismatch(mismatch("instr_word", "addi")).bug_id == "BUG1"

    def test_pc_divergence_attributed_to_bug1(self):
        assert classify_mismatch(
            mismatch("pc_divergence", "addi")).bug_id == "BUG1"

    def test_muldiv_rd_missing_is_bug2(self):
        match = classify_mismatch(mismatch("rd_missing", "mul"))
        assert match.bug_id == "BUG2"
        assert match.cwe == "CWE-440"

    def test_non_muldiv_rd_missing_unexplained(self):
        assert classify_mismatch(mismatch("rd_missing", "add")) is None

    def test_amo_x0_is_finding2(self):
        assert classify_mismatch(
            mismatch("rd_spurious_x0", "amoor.d")).bug_id == "FINDING2"

    def test_jalr_x0_is_finding3(self):
        assert classify_mismatch(
            mismatch("rd_spurious_x0", "jalr")).bug_id == "FINDING3"

    def test_trap_priority_is_finding1(self):
        assert classify_mismatch(
            mismatch("trap_cause", "ld", 5, 4)).bug_id == "FINDING1"
        assert classify_mismatch(
            mismatch("trap_cause", "sd", 7, 6)).bug_id == "FINDING1"

    def test_other_trap_mismatch_unexplained(self):
        assert classify_mismatch(mismatch("trap_cause", "ld", 2, 8)) is None

    def test_rd_value_unexplained(self):
        assert classify_mismatch(mismatch("rd_value", "add")) is None


class TestGrouping:
    def test_classify_mismatches_groups(self):
        groups = classify_mismatches([
            mismatch("instr_word", "addi"),
            mismatch("rd_missing", "mul"),
            mismatch("rd_value", "add"),
        ])
        assert set(groups) == {"BUG1", "BUG2", "UNEXPLAINED"}

    def test_detected_bugs(self):
        bugs = detected_bugs([
            mismatch("instr_word", "addi"),
            mismatch("rd_spurious_x0", "jalr"),
        ])
        assert bugs == {"BUG1", "FINDING3"}

    def test_known_bug_registry_complete(self):
        assert set(KNOWN_BUGS) == {
            "BUG1", "BUG2", "FINDING1", "FINDING2", "FINDING3"
        }


def campaign(name, *mismatches):
    return CampaignResult(name=name, mismatches=list(mismatches))


class TestFleetDedup:
    """Satellite pin: identical signatures found by different campaigns
    count once in the E-BUGS table, with per-campaign attribution kept."""

    def test_identical_signatures_count_once(self):
        shared = mismatch("rd_missing", "mul")
        deduped = dedupe_mismatches([
            campaign("chatfuzz", shared, mismatch("instr_word", "addi")),
            campaign("thehuzz", shared),
        ])
        assert len(deduped) == 2
        assert deduped[shared.signature].campaigns == ("chatfuzz", "thehuzz")
        assert deduped[("instr_word", "addi")].campaigns == ("chatfuzz",)

    def test_same_campaign_listed_once(self):
        # Two distinct Mismatch objects, same signature, same campaign.
        deduped = dedupe_mismatches([
            campaign("solo", mismatch("rd_missing", "mul"),
                     Mismatch("rd_missing", 3, 8, "later hit",
                              ("rd_missing", "mul"))),
        ])
        assert deduped[("rd_missing", "mul")].campaigns == ("solo",)

    def test_fleet_detected_bugs_unions_campaigns(self):
        results = [
            campaign("a", mismatch("instr_word", "addi")),
            campaign("b", mismatch("rd_spurious_x0", "jalr")),
        ]
        assert fleet_detected_bugs(results) == {"BUG1", "FINDING3"}

    def test_bug_rows_dedupe_and_attribute(self):
        shared = mismatch("rd_missing", "mul")
        results = [
            campaign("chatfuzz", shared, mismatch("rd_missing", "div")),
            campaign("thehuzz", shared),
            campaign("random", mismatch("rd_value", "add")),
        ]
        rows = {row[0]: row for row in fleet_bug_rows(results)}
        # BUG2: 'mul' signature counted once despite two finders.
        assert rows["BUG2"][2] == "FOUND"
        assert rows["BUG2"][3] == "2"  # mul + div signatures
        assert rows["BUG2"][4] == "chatfuzz, thehuzz"
        assert rows["BUG1"][2] == "not found"
        assert rows["UNEXPLAINED"][3] == "1"
        assert rows["UNEXPLAINED"][4] == "random"

    def test_bug_table_renders(self):
        table = fleet_bug_table([campaign("a", mismatch("instr_word", "x"))])
        assert "BUG1" in table and "FOUND" in table
        assert table.splitlines()[0].startswith("E-BUGS")


class TestReport:
    def test_format_table_aligns(self):
        table = format_table(["fuzzer", "cov%"],
                             [["chatfuzz", "74.96"], ["thehuzz", "67.4"]],
                             title="E-1P8K")
        lines = table.splitlines()
        assert lines[0] == "E-1P8K"
        assert "chatfuzz" in lines[3]
        assert len(lines[1]) == len(lines[2])  # header matches separator

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table
